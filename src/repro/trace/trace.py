"""Block-run execution traces.

A *trace event* is one run of instructions within a single instruction
cache block, optionally paired with one data access:

    (iblock, ilen, dblock, dwrite)

* ``iblock`` -- instruction block number being fetched;
* ``ilen``   -- number of instructions executed from that block;
* ``dblock`` -- data block number touched, or ``-1`` for none;
* ``dwrite`` -- 1 if the data access is a store, else 0.

This is the finest granularity any mechanism in the paper operates at
(caches, STREX's phaseID tagging, SLICC's signatures and PIF all act on
64 B blocks), which keeps pure-Python replay tractable (DESIGN.md,
decision 1).  Events are stored as parallel Python lists -- list indexing
is considerably faster than NumPy scalar extraction in the simulator's
inner loop -- with NumPy views available for analysis.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np


class TransactionTrace:
    """The full execution trace of one transaction."""

    __slots__ = (
        "txn_id",
        "txn_type",
        "iblocks",
        "ilens",
        "dblocks",
        "dwrites",
        "total_instructions",
        "_unique_iblocks",
        "_packed_events",
        "_set_indices",
        "_ilen_prefix",
    )

    def __init__(
        self,
        txn_id: int,
        txn_type: str,
        iblocks: List[int],
        ilens: List[int],
        dblocks: List[int],
        dwrites: List[int],
    ):
        lengths = {len(iblocks), len(ilens), len(dblocks), len(dwrites)}
        if len(lengths) != 1:
            raise ValueError("trace arrays must have equal length")
        self.txn_id = txn_id
        self.txn_type = txn_type
        self.iblocks = iblocks
        self.ilens = ilens
        self.dblocks = dblocks
        self.dwrites = dwrites
        self.total_instructions = sum(ilens)
        # Lazily-built derived views, shared by every run of a batch:
        # the distinct-iblock set, packed per-event tuples keyed by
        # base CPI, and L1-I set indices keyed by set count.
        self._unique_iblocks: Optional[frozenset] = None
        self._packed_events: dict = {}
        self._set_indices: dict = {}
        self._ilen_prefix: Optional[list] = None

    def __len__(self) -> int:
        return len(self.iblocks)

    def __repr__(self) -> str:
        return (
            f"TransactionTrace(id={self.txn_id}, type={self.txn_type!r}, "
            f"events={len(self)}, instructions={self.total_instructions})"
        )

    def events(self) -> Iterator[Tuple[int, int, int, int]]:
        """Iterate over (iblock, ilen, dblock, dwrite) tuples."""
        return zip(self.iblocks, self.ilens, self.dblocks, self.dwrites)

    def unique_iblocks(self) -> frozenset:
        """Distinct instruction blocks touched (the static footprint).

        Memoized: FPTable profiling and the Table 3 analysis call this
        repeatedly per trace.  The result is a frozenset so sharing the
        memo is safe.
        """
        if self._unique_iblocks is None:
            self._unique_iblocks = frozenset(self.iblocks)
        return self._unique_iblocks

    def footprint_units(self, blocks_per_unit: int) -> float:
        """Instruction footprint in L1-I size units (Table 3's metric)."""
        return len(self.unique_iblocks()) / blocks_per_unit

    def packed_events(self, cpi: float, num_sets: int) -> list:
        """``(iblock, icycles, ilen, dblock, dwrite, iset)`` tuples.

        ``icycles`` is ``ilen * cpi`` precomputed with exactly the
        operands the engine's reference loop uses, so replaying the
        packed form accumulates bit-identical float cycles; ``iset`` is
        the L1-I set index of ``iblock`` for the given geometry.  Built
        once per ``(cpi, num_sets)`` and shared by every run.
        """
        key = (cpi, num_sets)
        packed = self._packed_events.get(key)
        if packed is None:
            isets = self.iblock_set_indices(num_sets)
            packed = [
                (iblock, ilen * cpi, ilen, dblock, dwrite, iset)
                for iblock, ilen, dblock, dwrite, iset in zip(
                    self.iblocks, self.ilens,
                    self.dblocks, self.dwrites, isets)
            ]
            self._packed_events[key] = packed
        return packed

    def iblock_set_indices(self, num_sets: int) -> list:
        """Per-event L1-I set index of each instruction block.

        Matches ``Cache.set_index`` for the given geometry (mask for
        powers of two, modulo otherwise); built once per ``num_sets``.
        """
        indices = self._set_indices.get(num_sets)
        if indices is None:
            if num_sets & (num_sets - 1) == 0:
                mask = num_sets - 1
                indices = [block & mask for block in self.iblocks]
            else:
                indices = [block % num_sets for block in self.iblocks]
            self._set_indices[num_sets] = indices
        return indices

    def instruction_prefix(self) -> list:
        """Cumulative instruction counts: ``prefix[i]`` is the total
        instructions in events ``[0, i)``, so a slice's instruction
        count is ``prefix[end] - prefix[start]``.  Memoized."""
        prefix = self._ilen_prefix
        if prefix is None:
            prefix = [0] * (len(self.ilens) + 1)
            total = 0
            for i, ilen in enumerate(self.ilens):
                total += ilen
                prefix[i + 1] = total
            self._ilen_prefix = prefix
        return prefix

    def iblock_array(self) -> np.ndarray:
        """Instruction blocks as a NumPy array (for analysis)."""
        return np.asarray(self.iblocks, dtype=np.int64)

    def ilen_array(self) -> np.ndarray:
        """Per-event instruction counts as a NumPy array."""
        return np.asarray(self.ilens, dtype=np.int64)


class TraceBuilder:
    """Incremental construction of a :class:`TransactionTrace`."""

    def __init__(self, txn_id: int, txn_type: str):
        self.txn_id = txn_id
        self.txn_type = txn_type
        self._iblocks: List[int] = []
        self._ilens: List[int] = []
        self._dblocks: List[int] = []
        self._dwrites: List[int] = []

    def append(
        self,
        iblock: int,
        ilen: int,
        dblock: int = -1,
        dwrite: int = 0,
    ) -> None:
        """Append one event."""
        if ilen <= 0:
            raise ValueError("ilen must be positive")
        self._iblocks.append(iblock)
        self._ilens.append(ilen)
        self._dblocks.append(dblock)
        self._dwrites.append(dwrite)

    def __len__(self) -> int:
        return len(self._iblocks)

    @property
    def last_iblock(self) -> Optional[int]:
        """Most recently appended instruction block, if any."""
        if not self._iblocks:
            return None
        return self._iblocks[-1]

    def build(self) -> TransactionTrace:
        """Finalize into an immutable-by-convention trace."""
        if not self._iblocks:
            raise ValueError("cannot build an empty trace")
        return TransactionTrace(
            self.txn_id,
            self.txn_type,
            self._iblocks,
            self._ilens,
            self._dblocks,
            self._dwrites,
        )


def save_traces(path: str, traces: List[TransactionTrace]) -> None:
    """Persist traces to an ``.npz`` archive."""
    payload = {}
    meta = []
    for i, trace in enumerate(traces):
        meta.append((trace.txn_id, trace.txn_type))
        payload[f"i{i}"] = np.asarray(trace.iblocks, dtype=np.int64)
        payload[f"l{i}"] = np.asarray(trace.ilens, dtype=np.int32)
        payload[f"d{i}"] = np.asarray(trace.dblocks, dtype=np.int64)
        payload[f"w{i}"] = np.asarray(trace.dwrites, dtype=np.int8)
    payload["ids"] = np.asarray([m[0] for m in meta], dtype=np.int64)
    payload["types"] = np.asarray([m[1] for m in meta])
    np.savez_compressed(path, **payload)


def load_traces(path: str) -> List[TransactionTrace]:
    """Load traces previously written by :func:`save_traces`."""
    with np.load(path, allow_pickle=False) as data:
        ids = data["ids"]
        types = data["types"]
        traces = []
        for i in range(len(ids)):
            traces.append(
                TransactionTrace(
                    int(ids[i]),
                    str(types[i]),
                    data[f"i{i}"].tolist(),
                    data[f"l{i}"].tolist(),
                    data[f"d{i}"].tolist(),
                    data[f"w{i}"].tolist(),
                )
            )
    return traces
