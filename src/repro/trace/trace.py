"""Block-run execution traces.

A *trace event* is one run of instructions within a single instruction
cache block, optionally paired with one data access:

    (iblock, ilen, dblock, dwrite)

* ``iblock`` -- instruction block number being fetched;
* ``ilen``   -- number of instructions executed from that block;
* ``dblock`` -- data block number touched, or ``-1`` for none;
* ``dwrite`` -- 1 if the data access is a store, else 0.

This is the finest granularity any mechanism in the paper operates at
(caches, STREX's phaseID tagging, SLICC's signatures and PIF all act on
64 B blocks), which keeps pure-Python replay tractable (DESIGN.md,
decision 1).  Events are stored as parallel Python lists -- list indexing
is considerably faster than NumPy scalar extraction in the simulator's
inner loop -- with NumPy views available for analysis.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np


class TransactionTrace:
    """The full execution trace of one transaction."""

    __slots__ = (
        "txn_id",
        "txn_type",
        "iblocks",
        "ilens",
        "dblocks",
        "dwrites",
        "total_instructions",
    )

    def __init__(
        self,
        txn_id: int,
        txn_type: str,
        iblocks: List[int],
        ilens: List[int],
        dblocks: List[int],
        dwrites: List[int],
    ):
        lengths = {len(iblocks), len(ilens), len(dblocks), len(dwrites)}
        if len(lengths) != 1:
            raise ValueError("trace arrays must have equal length")
        self.txn_id = txn_id
        self.txn_type = txn_type
        self.iblocks = iblocks
        self.ilens = ilens
        self.dblocks = dblocks
        self.dwrites = dwrites
        self.total_instructions = sum(ilens)

    def __len__(self) -> int:
        return len(self.iblocks)

    def __repr__(self) -> str:
        return (
            f"TransactionTrace(id={self.txn_id}, type={self.txn_type!r}, "
            f"events={len(self)}, instructions={self.total_instructions})"
        )

    def events(self) -> Iterator[Tuple[int, int, int, int]]:
        """Iterate over (iblock, ilen, dblock, dwrite) tuples."""
        return zip(self.iblocks, self.ilens, self.dblocks, self.dwrites)

    def unique_iblocks(self) -> set:
        """Distinct instruction blocks touched (the static footprint)."""
        return set(self.iblocks)

    def footprint_units(self, blocks_per_unit: int) -> float:
        """Instruction footprint in L1-I size units (Table 3's metric)."""
        return len(self.unique_iblocks()) / blocks_per_unit

    def iblock_array(self) -> np.ndarray:
        """Instruction blocks as a NumPy array (for analysis)."""
        return np.asarray(self.iblocks, dtype=np.int64)

    def ilen_array(self) -> np.ndarray:
        """Per-event instruction counts as a NumPy array."""
        return np.asarray(self.ilens, dtype=np.int64)


class TraceBuilder:
    """Incremental construction of a :class:`TransactionTrace`."""

    def __init__(self, txn_id: int, txn_type: str):
        self.txn_id = txn_id
        self.txn_type = txn_type
        self._iblocks: List[int] = []
        self._ilens: List[int] = []
        self._dblocks: List[int] = []
        self._dwrites: List[int] = []

    def append(
        self,
        iblock: int,
        ilen: int,
        dblock: int = -1,
        dwrite: int = 0,
    ) -> None:
        """Append one event."""
        if ilen <= 0:
            raise ValueError("ilen must be positive")
        self._iblocks.append(iblock)
        self._ilens.append(ilen)
        self._dblocks.append(dblock)
        self._dwrites.append(dwrite)

    def __len__(self) -> int:
        return len(self._iblocks)

    @property
    def last_iblock(self) -> Optional[int]:
        """Most recently appended instruction block, if any."""
        if not self._iblocks:
            return None
        return self._iblocks[-1]

    def build(self) -> TransactionTrace:
        """Finalize into an immutable-by-convention trace."""
        if not self._iblocks:
            raise ValueError("cannot build an empty trace")
        return TransactionTrace(
            self.txn_id,
            self.txn_type,
            self._iblocks,
            self._ilens,
            self._dblocks,
            self._dwrites,
        )


def save_traces(path: str, traces: List[TransactionTrace]) -> None:
    """Persist traces to an ``.npz`` archive."""
    payload = {}
    meta = []
    for i, trace in enumerate(traces):
        meta.append((trace.txn_id, trace.txn_type))
        payload[f"i{i}"] = np.asarray(trace.iblocks, dtype=np.int64)
        payload[f"l{i}"] = np.asarray(trace.ilens, dtype=np.int32)
        payload[f"d{i}"] = np.asarray(trace.dblocks, dtype=np.int64)
        payload[f"w{i}"] = np.asarray(trace.dwrites, dtype=np.int8)
    payload["ids"] = np.asarray([m[0] for m in meta], dtype=np.int64)
    payload["types"] = np.asarray([m[1] for m in meta])
    np.savez_compressed(path, **payload)


def load_traces(path: str) -> List[TransactionTrace]:
    """Load traces previously written by :func:`save_traces`."""
    with np.load(path, allow_pickle=False) as data:
        ids = data["ids"]
        types = data["types"]
        traces = []
        for i in range(len(ids)):
            traces.append(
                TransactionTrace(
                    int(ids[i]),
                    str(types[i]),
                    data[f"i{i}"].tolist(),
                    data[f"l{i}"].tolist(),
                    data[f"d{i}"].tolist(),
                    data[f"w{i}"].tolist(),
                )
            )
    return traces
