"""Block-run execution traces and trace I/O."""

from repro.trace.trace import (
    TraceBuilder,
    TransactionTrace,
    load_traces,
    save_traces,
)

__all__ = ["TraceBuilder", "TransactionTrace", "load_traces", "save_traces"]
