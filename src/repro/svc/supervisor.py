"""Sweep-service supervisor: admit, route, collect, restart, drain.

The supervisor is the queue's single consumer.  Its loop:

* **admit** — pop the most urgent job, expand it to cells, settle
  already-cached cells immediately (recorded as warm hits, manifest
  row included, exactly like a solo run's cache short-circuit), and
  route the rest to worker inboxes;
* **collect** — fold worker outbox outcomes into the durable job
  records under ``<svc_root>/jobs/``;
* **supervise** — declare a worker dead when its process has exited
  *or* its heartbeat has gone stale, re-queue its claimed cells (with
  a bounded attempt count so a poisoned cell cannot crash-loop the
  service), and restart it;
* **drain** — on SIGTERM, stop admitting, forward SIGTERM to the
  workers (each finishes its in-flight cell), collect the stragglers
  and exit with durable state: pending queue files and routed inbox
  cells survive on disk, so a restarted service resumes where this
  one stopped.

Affinity routing is the warm-cache play: a cell is routed by a hash
of exactly the identity the warm layers key on — the materialized
config, the scheduler/team pair, and the trace-generation fields the
runner's trace memo keys on — so identical (config, scheduler, trace)
identities always land on the same worker.  The batch record/replay
registry needs three sightings of one identity to reach replay
(sight, record, replay); spreading those sightings across workers
would reset the count, co-locating them is what converts repeat
submissions into replay hits.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import signal
import threading
import time
from pathlib import Path
from typing import Dict, Optional

from repro import obs
from repro.exp.cache import ResultCache, spec_key
from repro.exp.manifest import Manifest, ManifestEntry
from repro.exp.spec import RunSpec
from repro.svc.queue import (
    DEFAULT_PRIORITY,
    JobQueue,
    _atomic_write_json,
)
from repro.svc.worker import HEARTBEAT_INTERVAL, worker_dir, worker_main

#: Default worker-process count.
DEFAULT_WORKERS = 2

#: Heartbeat age (seconds) past which a live process counts as dead.
HEARTBEAT_TIMEOUT = 10.0

#: Extra executions a cell may get after its claimant died.
DEFAULT_REQUEUES = 2


def svc_root_for(cache_dir: Path) -> Path:
    """The service state directory for a cache.

    Kept *inside* the cache directory so one path names a deployment,
    but always nested two levels down (``svc/<area>/...``) — the
    cache's ``*/*.json`` entry glob can never see service files.
    """
    return Path(cache_dir) / "svc"


def affinity_identity(spec: RunSpec) -> str:
    """Canonical digest of the warm-state identity of a cell.

    Hashes exactly what the warm layers key on: the materialized
    config and scheduler/team pair (the batch record/replay identity,
    minus the trace digests which are themselves a pure function of
    the generation fields) plus the trace-memo key fields.  The
    prefetcher is deliberately excluded: it changes the simulation but
    not the traces or run tables, so prefetcher variants of one cell
    still share a worker's warm trace memo.
    """
    config = spec.build_config()
    payload = {
        "config": config.to_dict(),
        "scheduler": spec.scheduler,
        "team_size": spec.team_size,
        "trace": [spec.workload, config.l1i_blocks, spec.seed,
                  spec.mode, spec.txn_type, spec.transactions,
                  spec.replicas, spec.effective_mix_seed()],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def route(spec: RunSpec, workers: int) -> int:
    """The worker index that owns a cell's warm-state identity."""
    return int(affinity_identity(spec), 16) % max(1, int(workers))


def _cell_index(cell_id: str) -> int:
    """The spec index encoded in a ``<job>.<idx>`` cell id."""
    return int(cell_id.rpartition(".")[2])


class Supervisor:
    """Owns the queue, the job records, and the worker fleet."""

    def __init__(self, cache_dir: Path,
                 svc_root: Optional[Path] = None,
                 workers: int = DEFAULT_WORKERS,
                 timeout: Optional[float] = None,
                 retries: int = 2,
                 queue_capacity: Optional[int] = None,
                 heartbeat_timeout: float = HEARTBEAT_TIMEOUT,
                 heartbeat_interval: float = HEARTBEAT_INTERVAL,
                 poll_interval: float = 0.05,
                 requeues: int = DEFAULT_REQUEUES,
                 drain_timeout: float = 30.0,
                 mp_context=None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if requeues < 0:
            raise ValueError("requeues must be >= 0")
        self.cache_dir = Path(cache_dir)
        self.svc_root = (Path(svc_root) if svc_root is not None
                         else svc_root_for(self.cache_dir))
        self.workers = int(workers)
        self.timeout = timeout
        self.retries = retries
        self.heartbeat_timeout = heartbeat_timeout
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        self.requeues = requeues
        self.drain_timeout = drain_timeout
        self.queue = JobQueue(self.svc_root / "queue",
                              capacity=queue_capacity)
        self.jobs_dir = self.svc_root / "jobs"
        self.state_path = self.svc_root / "supervisor" / "state.json"
        self.cache = ResultCache(self.cache_dir)
        self.manifest = Manifest(self.cache_dir / "manifest.jsonl")
        self.restarts: Dict[int, int] = {i: 0 for i in range(workers)}
        self._jobs: Dict[str, dict] = {}
        self._procs: Dict[int, multiprocessing.process.BaseProcess] = {}
        self._spawned: Dict[int, float] = {}
        self._draining = threading.Event()
        self._last_state_write = 0.0
        context = mp_context
        if context is None:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None)
        self._context = context

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def serve(self) -> None:
        """Run the service until SIGTERM/SIGINT, then drain and stop."""
        self._refuse_second_supervisor()
        if threading.current_thread() is threading.main_thread():
            signal.signal(signal.SIGTERM, self._on_stop_signal)
            signal.signal(signal.SIGINT, self._on_stop_signal)
        self.queue.persist_capacity()
        self._write_state("serving", force=True)
        for index in range(self.workers):
            self._spawn(index)
        self._recover()
        with obs.span("svc.serve", workers=self.workers,
                      cache_dir=str(self.cache_dir)):
            try:
                while not self._draining.is_set():
                    progressed = any([
                        self._admit(),
                        self._collect(),
                        self._supervise(),
                    ])
                    self._write_state("serving")
                    if not progressed:
                        self._draining.wait(self.poll_interval)
            finally:
                self._drain()
            obs.flush()

    def stop(self) -> None:
        """Ask a serving supervisor (same process) to drain and exit."""
        self._draining.set()

    def _on_stop_signal(self, signum, frame) -> None:
        self._draining.set()

    def _refuse_second_supervisor(self) -> None:
        state = read_state(self.svc_root)
        if state is None or state.get("state") == "stopped":
            return
        pid = state.get("pid")
        if pid is not None and _pid_alive(int(pid)):
            raise RuntimeError(
                f"a supervisor (pid {pid}) is already serving "
                f"{self.svc_root}; stop it first"
            )

    def _drain(self) -> None:
        self._write_state("draining", force=True)
        for process in self._procs.values():
            if process.is_alive():
                process.terminate()  # SIGTERM: finish in-flight cell
        deadline = time.monotonic() + self.drain_timeout
        while any(p.is_alive() for p in self._procs.values()) and \
                time.monotonic() < deadline:
            self._collect()
            time.sleep(min(0.05, self.poll_interval))
        for process in self._procs.values():
            if process.is_alive():  # pragma: no cover - wedged worker
                process.kill()
            process.join()
        self._collect()
        self._write_state("stopped", force=True)

    # ------------------------------------------------------------------
    # Worker fleet
    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> None:
        process = self._context.Process(
            target=worker_main,
            args=(str(self.svc_root), index, str(self.cache_dir),
                  self.timeout, self.retries, self.heartbeat_interval),
            name=f"svc-worker-{index}",
        )
        process.start()
        self._procs[index] = process
        self._spawned[index] = time.time()

    def _supervise(self) -> bool:
        """Restart dead/stale workers, re-queueing their claims."""
        progressed = False
        for index in range(self.workers):
            process = self._procs.get(index)
            alive = process is not None and process.is_alive()
            if alive and not self._heartbeat_stale(index):
                continue
            if process is not None:
                if process.is_alive():  # stale heartbeat, wedged main
                    process.kill()  # pragma: no cover - defensive
                process.join()
            self._requeue_claims(index)
            self.restarts[index] += 1
            obs.metric_inc("svc.worker.restarts")
            with obs.span("svc.worker.restart", worker=index,
                          restarts=self.restarts[index]):
                self._spawn(index)
            progressed = True
        return progressed

    def _heartbeat_stale(self, index: int) -> bool:
        beat = read_heartbeat(self.svc_root, index)
        last = beat["ts"] if beat else self._spawned.get(index, 0.0)
        return time.time() - last > self.heartbeat_timeout

    def _requeue_claims(self, index: int) -> None:
        """Return a dead worker's claimed cells to its inbox.

        Each pass bumps the cell's attempt count; a cell whose budget
        is spent is failed outright instead of re-queued, so a cell
        that kills its executor cannot crash-loop the service.
        """
        spool = worker_dir(self.svc_root, index)
        for path in sorted((spool / "running").glob("p*.json")):
            try:
                cell = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            attempts = int(cell.get("attempts", 1))
            try:
                path.unlink()
            except OSError:
                continue
            if attempts > self.requeues:
                self._apply_outcome({
                    "cell": cell.get("cell"), "job": cell.get("job"),
                    "key": cell.get("key"), "worker": index,
                    "status": "failed", "hit": False, "warm": False,
                    "batch_replays": 0, "batch_records": 0,
                    "wall_s": 0.0, "attempts": attempts,
                    "error": (f"worker {index} died while running this "
                              f"cell {attempts} time(s)"),
                })
                continue
            cell["attempts"] = attempts + 1
            obs.metric_inc("svc.cells.requeued")
            _atomic_write_json(spool / "inbox" / path.name, cell)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit(self) -> bool:
        claimed = self.queue.claim_next()
        if claimed is None:
            return False
        job_id, payload = claimed
        record = self._load_job(job_id)
        if record is not None and record.get("state") != "queued":
            return True  # stale queue file for an already-admitted job
        with obs.span("svc.admit", job=job_id):
            self._admit_job(job_id, payload)
        return True

    def _admit_job(self, job_id: str, payload: dict) -> None:
        specs = [RunSpec.from_dict(d) for d in payload["specs"]]
        repeat = max(1, int(payload.get("repeat", 1)))
        force = bool(payload.get("force", False))
        priority = int(payload.get("priority", DEFAULT_PRIORITY))
        now = time.time()
        submitted = float(payload.get("submitted_s", now))
        obs.metric_observe("svc.queue.wait_us",
                           max(0.0, now - submitted) * 1e6)
        cells: Dict[str, dict] = {}
        for idx, spec in enumerate(specs):
            key = spec_key(spec)
            cell_id = f"{job_id}.{idx:04d}"
            if not force and repeat <= 1 and key in self.cache:
                # Settled without touching a worker — the service-side
                # twin of the runner's cache short-circuit, manifest
                # row included.
                self.manifest.record(ManifestEntry(
                    key=key, spec=spec.to_dict(), hit=True, wall_s=0.0,
                    worker=None, attempts=0, ts=round(time.time(), 3),
                    sweep=job_id, shard=None))
                cells[cell_id] = {
                    "key": key, "worker": None, "status": "done",
                    "hit": True, "warm": True, "batch_replays": 0,
                    "wall_s": 0.0, "attempts": 0, "error": None,
                }
                obs.metric_inc("svc.cells.precached")
                continue
            target = route(spec, self.workers)
            name = f"p{priority}-{time.time_ns():020d}-{cell_id}.json"
            _atomic_write_json(
                worker_dir(self.svc_root, target) / "inbox" / name,
                {
                    "cell": cell_id, "job": job_id, "key": key,
                    "spec": spec.to_dict(), "repeat": repeat,
                    "force": force, "attempts": 1,
                    "priority": priority, "enqueued_s": submitted,
                })
            cells[cell_id] = {
                "key": key, "worker": target, "status": "pending",
                "hit": False, "warm": False, "batch_replays": 0,
                "wall_s": 0.0, "attempts": 1, "error": None,
            }
            obs.metric_inc("svc.cells.dispatched")
        record = {
            "id": job_id,
            "state": "running",
            "priority": priority,
            "repeat": repeat,
            "force": force,
            "submitted_s": submitted,
            "admitted_s": now,
            "queue_wait_s": round(max(0.0, now - submitted), 6),
            "specs": payload["specs"],
            "cells": cells,
        }
        self._jobs[job_id] = record
        if not any(c["status"] == "pending" for c in cells.values()):
            self._finalize(record)
        self._save_job(record)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _collect(self) -> bool:
        progressed = False
        for index in range(self.workers):
            outbox = worker_dir(self.svc_root, index) / "outbox"
            for path in sorted(outbox.glob("*.json")):
                try:
                    outcome = json.loads(path.read_text())
                except (OSError, json.JSONDecodeError):
                    continue
                applied = self._apply_outcome(outcome)
                try:
                    path.unlink()
                except OSError:
                    pass
                progressed = progressed or applied
        return progressed

    def _apply_outcome(self, outcome: dict) -> bool:
        job_id = outcome.get("job")
        record = self._load_job(job_id) if job_id else None
        if record is None:
            return False
        cell = record["cells"].get(outcome.get("cell"))
        if cell is None or cell["status"] != "pending":
            return False  # duplicate outcome after a crashy handoff
        cell.update(
            status=outcome.get("status", "failed"),
            worker=outcome.get("worker", cell.get("worker")),
            hit=bool(outcome.get("hit", False)),
            warm=bool(outcome.get("warm", False)),
            batch_replays=int(outcome.get("batch_replays", 0)),
            wall_s=float(outcome.get("wall_s", 0.0)),
            attempts=int(outcome.get("attempts", cell.get("attempts", 1))),
            error=outcome.get("error"),
        )
        if not any(c["status"] == "pending"
                   for c in record["cells"].values()):
            self._finalize(record)
        self._save_job(record)
        return True

    def _finalize(self, record: dict) -> None:
        cells = record["cells"].values()
        failed = sum(1 for c in cells if c["status"] == "failed")
        warm = sum(1 for c in cells if c.get("warm"))
        record.update(
            state="failed" if failed else "done",
            finished_s=time.time(),
            done=sum(1 for c in cells if c["status"] == "done"),
            failed=failed,
            cache_hits=sum(1 for c in cells if c.get("hit")),
            executed=sum(1 for c in cells
                         if c["status"] == "done" and not c.get("hit")),
            warm_hits=warm,
            warm_rate=round(warm / max(1, len(record["cells"])), 6),
            batch_replays=sum(c.get("batch_replays", 0) for c in cells),
            wall_s=round(sum(c.get("wall_s", 0.0) for c in cells), 6),
        )
        record.pop("specs", None)  # only needed while cells can requeue
        obs.metric_inc("svc.jobs.failed" if failed else "svc.jobs.done")

    # ------------------------------------------------------------------
    # Job records
    # ------------------------------------------------------------------
    def _job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _load_job(self, job_id: str) -> Optional[dict]:
        record = self._jobs.get(job_id)
        if record is not None:
            return record
        try:
            record = json.loads(self._job_path(job_id).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        self._jobs[job_id] = record
        return record

    def _save_job(self, record: dict) -> None:
        _atomic_write_json(self._job_path(record["id"]), record)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Resume durable state left by a previous supervisor.

        * queue files for jobs that were already admitted are dropped;
        * every cell file anywhere in a worker spool is re-routed by
          affinity against the *current* worker count (a restart may
          resize the fleet); cells found in a ``running/`` spool have
          their attempt count bumped — their claimant died with them;
        * job records still marked ``running`` are loaded, and any
          pending cell with no surviving cell file is regenerated from
          the record's spec list.
        """
        job_paths = (sorted(self.jobs_dir.glob("*.json"))
                     if self.jobs_dir.exists() else [])
        for path in job_paths:
            record = self._load_job(path.stem)
            if record and record.get("state") != "queued":
                self.queue.discard(record["id"])
        orphans = []
        workers_root = self.svc_root / "workers"
        if workers_root.exists():
            for spool_name, claimed in (("inbox", False),
                                        ("running", True)):
                for path in sorted(
                        workers_root.glob(f"*/{spool_name}/p*.json")):
                    try:
                        cell = json.loads(path.read_text())
                    except (OSError, json.JSONDecodeError):
                        continue
                    try:
                        path.unlink()
                    except OSError:
                        continue
                    if claimed:
                        cell["attempts"] = int(cell.get("attempts", 1)) + 1
                    orphans.append((path.name, cell))
        for name, cell in orphans:
            record = self._load_job(cell.get("job", ""))
            if record is None or record.get("state") != "running":
                continue  # job finished or vanished; drop the orphan
            if int(cell.get("attempts", 1)) > self.requeues + 1:
                self._apply_outcome({
                    "cell": cell.get("cell"), "job": cell.get("job"),
                    "key": cell.get("key"), "worker": None,
                    "status": "failed", "hit": False, "warm": False,
                    "batch_replays": 0, "wall_s": 0.0,
                    "attempts": int(cell.get("attempts", 1)),
                    "error": "requeue budget spent across restarts",
                })
                continue
            spec = RunSpec.from_dict(cell["spec"])
            target = route(spec, self.workers)
            _atomic_write_json(
                worker_dir(self.svc_root, target) / "inbox" / name, cell)
        # Regenerate pending cells whose files were lost mid-handoff.
        present = {
            json.loads(p.read_text()).get("cell")
            for p in workers_root.glob("*/inbox/p*.json")
        } if workers_root.exists() else set()
        for record in list(self._jobs.values()):
            if record.get("state") != "running":
                continue
            specs = record.get("specs")
            for cell_id, cell in record["cells"].items():
                if cell["status"] != "pending" or cell_id in present:
                    continue
                if not specs:  # pragma: no cover - defensive
                    continue
                spec = RunSpec.from_dict(specs[_cell_index(cell_id)])
                target = route(spec, self.workers)
                name = (f"p{record.get('priority', DEFAULT_PRIORITY)}-"
                        f"{time.time_ns():020d}-{cell_id}.json")
                _atomic_write_json(
                    worker_dir(self.svc_root, target) / "inbox" / name,
                    {
                        "cell": cell_id, "job": record["id"],
                        "key": cell["key"], "spec": spec.to_dict(),
                        "repeat": record.get("repeat", 1),
                        "force": record.get("force", False),
                        "attempts": int(cell.get("attempts", 1)),
                        "priority": record.get("priority",
                                               DEFAULT_PRIORITY),
                        "enqueued_s": record.get("submitted_s"),
                    })

    # ------------------------------------------------------------------
    # Supervisor state file
    # ------------------------------------------------------------------
    def _write_state(self, state: str, force: bool = False) -> None:
        now = time.time()
        if not force and now - self._last_state_write < 0.5:
            return
        self._last_state_write = now
        _atomic_write_json(self.state_path, {
            "pid": os.getpid(),
            "state": state,
            "ts": now,
            "workers": self.workers,
            "cache_dir": str(self.cache_dir),
            "queue_capacity": self.queue.capacity,
            "heartbeat_timeout": self.heartbeat_timeout,
            "restarts": {str(i): n for i, n in self.restarts.items()},
        })


# ----------------------------------------------------------------------
# Read-only helpers shared with the client
# ----------------------------------------------------------------------
def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user pid
        return True
    return True


def read_state(svc_root: Path) -> Optional[dict]:
    """The supervisor state file, or ``None`` if absent/torn."""
    try:
        return json.loads(
            (Path(svc_root) / "supervisor" / "state.json").read_text())
    except (OSError, json.JSONDecodeError):
        return None


def read_heartbeat(svc_root: Path, index: int) -> Optional[dict]:
    """Worker ``index``'s latest heartbeat, or ``None``."""
    try:
        return json.loads(
            (worker_dir(svc_root, index) / "heartbeat.json").read_text())
    except (OSError, json.JSONDecodeError):
        return None
