"""Bounded, priority-aware, file-backed job queue.

The queue is a directory of JSON files: one pending job per file under
``<svc_root>/queue/pending/``, named so that a plain lexicographic
sort *is* the dequeue order::

    p{priority}-{time_ns:020d}-{job_id}.json

Priority is a single digit (0 = most urgent .. 9, default
:data:`DEFAULT_PRIORITY`), so the ``p{priority}-`` prefix sorts
urgent-first and the zero-padded nanosecond timestamp breaks ties
FIFO.  Files are written atomically (temp + ``os.replace``), so the
single consumer (the supervisor) never observes a torn job.

Backpressure is a hard bound on the number of pending files: a
:meth:`JobQueue.submit` past :attr:`JobQueue.capacity` raises
:class:`QueueFull` (or blocks up to ``timeout`` when asked to).  The
bound is advisory-free — producers and the consumer coordinate only
through the filesystem, which is what lets ``repro submit`` enqueue
into a service started by a different process (or not started yet:
pending files are durable and survive a supervisor restart).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid
from pathlib import Path
from typing import Optional, Tuple

#: Default bound on pending jobs before submissions push back.
DEFAULT_CAPACITY = 256

#: Default job priority (0 = most urgent, 9 = least).
DEFAULT_PRIORITY = 5


class QueueFull(RuntimeError):
    """The pending queue is at capacity; the submission was refused."""


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write ``payload`` as JSON via temp + ``os.replace``."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class JobQueue:
    """Single-consumer file-backed priority queue under ``root``.

    Any number of producers may :meth:`submit`; exactly one consumer
    (the supervisor) should :meth:`claim_next`.  Neither side needs
    the other to be alive.
    """

    def __init__(self, root: Path, capacity: Optional[int] = None):
        self.root = Path(root)
        self.pending = self.root / "pending"
        self._capacity = capacity

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """The pending-job bound.

        An explicit constructor value wins; otherwise the value the
        serving supervisor persisted in ``capacity.json`` (so clients
        see the server's bound); otherwise :data:`DEFAULT_CAPACITY`.
        """
        if self._capacity is not None:
            return self._capacity
        try:
            data = json.loads((self.root / "capacity.json").read_text())
            return int(data["capacity"])
        except (OSError, ValueError, KeyError, TypeError):
            return DEFAULT_CAPACITY

    def persist_capacity(self) -> None:
        """Publish this queue's bound for other-process producers."""
        _atomic_write_json(self.root / "capacity.json",
                           {"capacity": self.capacity})

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Number of pending jobs."""
        if not self.pending.exists():
            return 0
        return sum(1 for _ in self.pending.glob("p*.json"))

    def submit(self, payload: dict,
               priority: int = DEFAULT_PRIORITY,
               block: bool = False,
               timeout: Optional[float] = None,
               poll: float = 0.05) -> str:
        """Enqueue one job; returns its id.

        ``payload`` must carry an ``"id"`` (one is generated if
        absent).  At capacity, a non-blocking submit raises
        :class:`QueueFull` immediately; ``block=True`` waits up to
        ``timeout`` seconds (forever when ``None``) for space.
        """
        if not 0 <= int(priority) <= 9:
            raise ValueError(
                f"priority must be in [0, 9], got {priority!r}")
        job_id = payload.setdefault("id", uuid.uuid4().hex[:12])
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.depth() >= self.capacity:
            if not block or (deadline is not None
                             and time.monotonic() >= deadline):
                raise QueueFull(
                    f"queue at {self.root} holds {self.depth()} pending "
                    f"job(s) (capacity {self.capacity})"
                )
            time.sleep(poll)
        name = f"p{int(priority)}-{time.time_ns():020d}-{job_id}.json"
        _atomic_write_json(self.pending / name, payload)
        return job_id

    # ------------------------------------------------------------------
    # Consumer side (supervisor only)
    # ------------------------------------------------------------------
    def claim_next(self) -> Optional[Tuple[str, dict]]:
        """Pop the most urgent pending job, or ``None`` when empty.

        Returns ``(job_id, payload)``.  A torn or unreadable file is
        skipped (left in place) rather than wedging the queue; the
        atomic producer writes make that unreachable in practice.
        """
        if not self.pending.exists():
            return None
        for path in sorted(self.pending.glob("p*.json")):
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            try:
                path.unlink()
            except FileNotFoundError:  # pragma: no cover - single consumer
                continue
            return payload.get("id", path.stem), payload
        return None

    def discard(self, job_id: str) -> bool:
        """Drop every pending file carrying ``job_id`` (recovery)."""
        dropped = False
        if not self.pending.exists():
            return dropped
        for path in self.pending.glob(f"p*-{job_id}.json"):
            try:
                path.unlink()
                dropped = True
            except OSError:
                pass
        return dropped
