"""repro.svc — persistent sweep service with warm workers.

Every ad-hoc ``repro sweep`` pays full cold start: fork-per-cell
workers rebuild workload traces, run tables, and the batch
record/replay registry, discarding exactly the warm state the kernel
layers exist to exploit.  This package keeps that state alive: a
supervisor (:mod:`repro.svc.supervisor`) plus N long-lived worker
processes (:mod:`repro.svc.worker`) serve jobs from a bounded,
priority-aware, file-backed queue (:mod:`repro.svc.queue`), with a
file-protocol client (:mod:`repro.svc.client`) behind
``repro serve`` / ``repro submit`` / ``repro status``.

The contract that makes the service safe to adopt: results flow
through the *same* ``ResultCache``/``Manifest`` write paths as a solo
runner, so a grid served by ``repro submit`` is byte-identical to the
same grid run by ``repro sweep`` (asserted by differential test), and
the service directory lives under ``<cache>/svc/`` where the cache's
two-level entry glob cannot see it.
"""

from repro.svc.client import (
    JobFailed,
    format_status,
    read_job,
    service_status,
    submit_job,
    svc_root_for,
    wait_job,
)
from repro.svc.queue import (
    DEFAULT_CAPACITY,
    DEFAULT_PRIORITY,
    JobQueue,
    QueueFull,
)
from repro.svc.supervisor import (
    DEFAULT_WORKERS,
    Supervisor,
    affinity_identity,
    route,
)
from repro.svc.worker import Worker, worker_main

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_PRIORITY",
    "DEFAULT_WORKERS",
    "JobFailed",
    "JobQueue",
    "QueueFull",
    "Supervisor",
    "Worker",
    "affinity_identity",
    "format_status",
    "read_job",
    "route",
    "service_status",
    "submit_job",
    "svc_root_for",
    "wait_job",
    "worker_main",
]
