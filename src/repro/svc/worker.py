"""Long-lived warm worker process for the sweep service.

A worker owns three spool directories under
``<svc_root>/workers/<index>/``:

* ``inbox/`` — cells the supervisor routed here (same file naming as
  the job queue, so lexicographic order is priority-then-FIFO);
* ``running/`` — the cell currently claimed (claim = atomic rename
  from ``inbox/``, so a cell is in exactly one spool at all times and
  a worker killed mid-cell leaves its claim behind as evidence);
* ``outbox/`` — one outcome JSON per finished cell, consumed by the
  supervisor.

The process keeps every warm layer alive across cells, which is the
entire point of the service: the runner's per-process trace memo
(:func:`repro.exp.runner.trace_memo_stats`), the traces' derived run
tables, and the batch record/replay registry
(:func:`repro.sim.batch.registry`) all persist because cells run
*inline* — a single long-lived :class:`~repro.exp.runner.Runner` with
``jobs=1`` on a dedicated executor thread, not a fork per cell.

Threading model: Python delivers signals to the main thread only, so
the main thread runs the control loop (heartbeat file every
:data:`HEARTBEAT_INTERVAL`, SIGTERM → graceful drain: finish the
in-flight cell, exit 0) while the executor thread claims and runs
cells.  Running cells off the main thread is exactly why
``_worker_run`` falls back to no-timeout instead of arming SIGALRM
there (see the runner's main-thread guard).

Results go through the very same ``ResultCache``/``Manifest`` write
paths as a solo ``repro sweep``, so served entries are byte-identical
to solo ones — the differential tests assert it.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from pathlib import Path
from typing import Dict, Optional

from repro import obs
from repro.exp.cache import ResultCache
from repro.exp.manifest import Manifest
from repro.exp.runner import Runner, trace_memo_stats
from repro.exp.spec import RunSpec
from repro.sim import batch
from repro.svc.queue import _atomic_write_json

#: Seconds between heartbeat file rewrites.
HEARTBEAT_INTERVAL = 0.2

#: Idle executor poll when the inbox is empty.
_IDLE_POLL = 0.02


def worker_dir(svc_root: Path, index: int) -> Path:
    """The spool root of worker ``index``."""
    return Path(svc_root) / "workers" / str(index)


class _NoReadCache(ResultCache):
    """Write-through cache whose reads always miss.

    Forced repeats (``repro submit --repeat N``) re-execute a cell to
    prime the batch record/replay registry; routing them through this
    wrapper keeps the cache short-circuit from eating the repeat while
    every ``put`` still lands byte-identically in the real cache
    directory (same canonical serialization, atomic replace).
    """

    def get(self, key):  # noqa: D102 - see class docstring
        return None


class Worker:
    """One warm worker: claim loop + heartbeat + graceful drain."""

    def __init__(self, svc_root: Path, index: int, cache_dir: Path,
                 timeout: Optional[float] = None, retries: int = 2,
                 heartbeat_interval: float = HEARTBEAT_INTERVAL):
        self.svc_root = Path(svc_root)
        self.index = int(index)
        self.dir = worker_dir(self.svc_root, self.index)
        self.inbox = self.dir / "inbox"
        self.running = self.dir / "running"
        self.outbox = self.dir / "outbox"
        for spool in (self.inbox, self.running, self.outbox):
            spool.mkdir(parents=True, exist_ok=True)
        self.heartbeat_path = self.dir / "heartbeat.json"
        self.heartbeat_interval = heartbeat_interval
        cache = ResultCache(cache_dir)
        # The real runner shares the service-wide cache and manifest —
        # the byte-identity contract hinges on using the same put/record
        # code paths as a solo run.  The repeat runner never reads the
        # cache and journals to a private audit file instead of the
        # shared manifest (repeats are warm-up work, not results).
        self.runner = Runner(jobs=1, cache=cache, timeout=timeout,
                             retries=retries)
        self.repeat_runner = Runner(
            jobs=1, cache=_NoReadCache(cache_dir),
            manifest=Manifest(self.dir / "repeats.jsonl"),
            timeout=timeout, retries=retries)
        self.counters: Dict[str, int] = {
            "cells": 0, "cache_hits": 0, "executed": 0, "failures": 0,
            "warm_hits": 0, "batch_replays": 0, "batch_records": 0,
            "repeats": 0,
        }
        self._stop = threading.Event()
        self._current: Optional[str] = None

    # ------------------------------------------------------------------
    # Process entry
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Serve until SIGTERM/SIGINT; returns after a clean drain."""
        signal.signal(signal.SIGTERM, self._on_stop_signal)
        signal.signal(signal.SIGINT, self._on_stop_signal)
        executor = threading.Thread(
            target=self._loop, name=f"svc-worker-{self.index}",
            daemon=True)
        executor.start()
        self._write_heartbeat("running")
        while executor.is_alive():
            executor.join(self.heartbeat_interval)
            self._write_heartbeat(
                "draining" if self._stop.is_set() else "running")
        self._write_heartbeat("stopped")
        obs.flush()

    def _on_stop_signal(self, signum, frame) -> None:
        self._stop.set()

    # ------------------------------------------------------------------
    # Executor thread
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            claimed = self._claim()
            if claimed is None:
                self._stop.wait(_IDLE_POLL)
                continue
            self._execute(claimed)

    def _claim(self) -> Optional[Path]:
        """Atomically move the most urgent inbox cell to ``running/``."""
        try:
            names = sorted(p.name for p in self.inbox.glob("p*.json"))
        except OSError:
            return None
        for name in names:
            target = self.running / name
            try:
                (self.inbox / name).rename(target)
            except (FileNotFoundError, OSError):
                continue
            return target
        return None

    def _execute(self, path: Path) -> None:
        try:
            cell = json.loads(path.read_text())
            spec = RunSpec.from_dict(cell["spec"])
        except (OSError, json.JSONDecodeError, KeyError, ValueError,
                TypeError) as exc:
            # A malformed cell can't be retried into health; report it
            # failed so the job doesn't hang on a pending cell forever.
            self._finish(path, {
                "cell": path.stem.rpartition("-")[2], "job": None,
                "status": "failed",
                "error": f"unreadable cell file: {exc}",
            })
            return
        self._current = cell.get("cell")
        registry = batch.registry()
        replays0, records0 = registry.replays, registry.recordings
        start = time.perf_counter()
        error: Optional[str] = None
        hit = False
        repeat = max(1, int(cell.get("repeat", 1)))
        with obs.span(
            "svc.cell",
            worker=self.index,
            job=cell.get("job"),
            cell=cell.get("cell"),
            spec=spec.describe(),
            repeat=repeat,
        ):
            try:
                if cell.get("force"):
                    self.repeat_runner.run([spec])
                else:
                    self.runner.run([spec])
                    hit = self.runner.hits > 0
                for _ in range(repeat - 1):
                    self.repeat_runner.run([spec])
                    self.counters["repeats"] += 1
            except Exception as exc:  # noqa: BLE001 - reported upstream
                error = f"{type(exc).__name__}: {exc}"
        wall = time.perf_counter() - start
        replays = registry.replays - replays0
        records = registry.recordings - records0
        warm = error is None and (hit or replays > 0)
        self.counters["cells"] += 1
        if error is not None:
            self.counters["failures"] += 1
        elif hit:
            self.counters["cache_hits"] += 1
        else:
            self.counters["executed"] += 1
        if warm:
            self.counters["warm_hits"] += 1
        self.counters["batch_replays"] += replays
        self.counters["batch_records"] += records
        obs.metric_inc("svc.cells.done")
        if warm:
            obs.metric_inc("svc.cells.warm")
        obs.metric_observe("svc.cell.wall_us", wall * 1e6)
        self._finish(path, {
            "cell": cell.get("cell"),
            "job": cell.get("job"),
            "key": cell.get("key"),
            "worker": self.index,
            "status": "failed" if error is not None else "done",
            "error": error,
            "hit": hit,
            "warm": warm,
            "batch_replays": replays,
            "batch_records": records,
            "wall_s": round(wall, 6),
            "enqueued_s": cell.get("enqueued_s"),
            "attempts": int(cell.get("attempts", 1)),
        })
        self._current = None
        obs.flush()

    def _finish(self, claim_path: Path, outcome: dict) -> None:
        """Publish the outcome, then release the claim.

        Ordering matters for crash safety: the outcome is written
        *before* the claim file is removed.  A worker killed between
        the two leaves both behind — the supervisor re-queues the
        claim and later ignores the duplicate outcome, which is safe
        because execution is idempotent (same spec ⇒ same bytes).
        """
        name = outcome.get("cell") or claim_path.stem
        _atomic_write_json(self.outbox / f"{name}.json", outcome)
        try:
            claim_path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Heartbeat
    # ------------------------------------------------------------------
    def _write_heartbeat(self, state: str) -> None:
        memo = trace_memo_stats()
        payload = {
            "pid": os.getpid(),
            "index": self.index,
            "ts": time.time(),
            "state": state,
            "current": self._current,
            "trace_memo_hits": memo["hits"],
            "trace_memo_misses": memo["misses"],
        }
        payload.update(self.counters)
        try:
            _atomic_write_json(self.heartbeat_path, payload)
        except OSError:  # pragma: no cover - spool dir vanished
            pass


def worker_main(svc_root: str, index: int, cache_dir: str,
                timeout: Optional[float], retries: int,
                heartbeat_interval: float = HEARTBEAT_INTERVAL) -> None:
    """Subprocess entry point (picklable top-level function)."""
    Worker(Path(svc_root), index, Path(cache_dir), timeout=timeout,
           retries=retries,
           heartbeat_interval=heartbeat_interval).run()
