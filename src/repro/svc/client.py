"""Client side of the sweep service: submit, wait, status.

Everything here is file-protocol only — a client never needs the
supervisor process to be importable, reachable, or even alive.
Submitting writes the durable job record (state ``queued``) *before*
enqueueing the pointer file, so however the two writes interleave
with a racing supervisor the record can only move forward
(queued → running → done/failed); waiting polls the record; status is
assembled read-only from the queue directory, the job records, the
worker heartbeats, and the supervisor state file.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.exp.spec import RunSpec, SweepSpec
from repro.sim import validate_run_request
from repro.svc.queue import (
    DEFAULT_PRIORITY,
    JobQueue,
    _atomic_write_json,
)
from repro.svc.supervisor import (
    _pid_alive,
    read_heartbeat,
    read_state,
    svc_root_for,
)


class JobFailed(RuntimeError):
    """A waited-on job finished in the ``failed`` state."""


def submit_job(svc_root: Union[Path, str],
               specs: Union[SweepSpec, Iterable[RunSpec]],
               priority: int = DEFAULT_PRIORITY,
               repeat: int = 1,
               force: bool = False,
               block: bool = False,
               timeout: Optional[float] = None) -> str:
    """Enqueue a job; returns its id immediately.

    ``specs`` may be a :class:`SweepSpec` (expanded client-side so the
    job record pins the exact cell list) or an iterable of
    :class:`RunSpec`.  ``repeat`` asks the worker to re-execute each
    cell that many times in total — the extra passes bypass the cache
    read (results are still written, byte-identically) purely to prime
    the batch record/replay registry: sight, record, replay.
    ``force`` re-executes even cached cells once.  Backpressure:
    at queue capacity this raises
    :class:`~repro.svc.queue.QueueFull` unless ``block`` is set.
    Every cell's config is materialized up front, so an invalid spec
    raises ``ValueError`` here instead of failing later in a worker.
    """
    if isinstance(specs, SweepSpec):
        specs = specs.expand()
    spec_list: List[RunSpec] = list(specs)
    if not spec_list:
        raise ValueError("job has no cells")
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    for spec in spec_list:
        try:
            spec.build_config()
            validate_run_request(spec.scheduler, spec.prefetcher,
                                 spec.team_size)
        except ValueError as exc:
            raise ValueError(
                f"cell {spec.describe()} is invalid: {exc}") from exc
    svc_root = Path(svc_root)
    queue = JobQueue(svc_root / "queue")
    payload = {
        "priority": int(priority),
        "repeat": int(repeat),
        "force": bool(force),
        "submitted_s": time.time(),
        "specs": [spec.to_dict() for spec in spec_list],
    }
    job_id = queue.submit(dict(payload), priority=priority,
                          block=block, timeout=timeout)
    # The record is (re)written after submit assigned the id, but a
    # supervisor that admits first simply wins: _save below only lands
    # if the record does not already exist.
    record_path = svc_root / "jobs" / f"{job_id}.json"
    if not record_path.exists():
        record = dict(payload, id=job_id, state="queued",
                      cells={})
        _atomic_write_json(record_path, record)
    return job_id


def read_job(svc_root: Union[Path, str], job_id: str) -> Optional[dict]:
    """The durable job record, or ``None`` if unknown."""
    try:
        return json.loads(
            (Path(svc_root) / "jobs" / f"{job_id}.json").read_text())
    except (OSError, json.JSONDecodeError):
        return None


def wait_job(svc_root: Union[Path, str], job_id: str,
             timeout: Optional[float] = None,
             poll: float = 0.05,
             raise_on_failure: bool = True) -> dict:
    """Block until the job reaches a terminal state; returns its record.

    Raises ``TimeoutError`` after ``timeout`` seconds and
    :class:`JobFailed` when the job finished ``failed`` (suppress with
    ``raise_on_failure=False``).
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        record = read_job(svc_root, job_id)
        if record is not None and record.get("state") in ("done",
                                                          "failed"):
            if record["state"] == "failed" and raise_on_failure:
                errors = sorted(
                    {c.get("error") for c in record.get("cells",
                                                        {}).values()
                     if c.get("error")})
                raise JobFailed(
                    f"job {job_id} failed "
                    f"({record.get('failed', '?')} cell(s)): "
                    f"{'; '.join(errors) or 'unknown error'}"
                )
            return record
        if deadline is not None and time.monotonic() >= deadline:
            raise TimeoutError(
                f"job {job_id} not finished after {timeout}s "
                f"(state: {(record or {}).get('state', 'unknown')})"
            )
        time.sleep(poll)


def service_status(svc_root: Union[Path, str]) -> dict:
    """A read-only snapshot of the whole service.

    Works with or without a live supervisor (liveness is judged by
    the state file's pid).  The shape is the ``repro status --json``
    contract::

        {"supervisor": {...}, "queue": {...}, "workers": [...],
         "jobs": {...}, "warm": {...}}
    """
    svc_root = Path(svc_root)
    state = read_state(svc_root)
    alive = bool(state and state.get("state") != "stopped"
                 and state.get("pid") is not None
                 and _pid_alive(int(state["pid"])))
    queue = JobQueue(svc_root / "queue")
    worker_count = int(state["workers"]) if state else 0
    restarts = {int(i): int(n)
                for i, n in (state or {}).get("restarts", {}).items()}
    workers = []
    for index in range(worker_count):
        beat = read_heartbeat(svc_root, index) or {}
        ts = beat.get("ts")
        workers.append({
            "index": index,
            "alive": bool(beat and beat.get("state") != "stopped"
                          and _pid_alive(int(beat.get("pid", 0) or 0))),
            "state": beat.get("state", "unknown"),
            "heartbeat_age_s": (round(max(0.0, time.time() - ts), 3)
                                if ts is not None else None),
            "restarts": restarts.get(index, 0),
            "cells": beat.get("cells", 0),
            "cache_hits": beat.get("cache_hits", 0),
            "executed": beat.get("executed", 0),
            "failures": beat.get("failures", 0),
            "warm_hits": beat.get("warm_hits", 0),
            "batch_replays": beat.get("batch_replays", 0),
            "batch_records": beat.get("batch_records", 0),
            "repeats": beat.get("repeats", 0),
            "trace_memo_hits": beat.get("trace_memo_hits", 0),
            "trace_memo_misses": beat.get("trace_memo_misses", 0),
        })
    jobs = {"queued": 0, "running": 0, "done": 0, "failed": 0}
    job_rows = []
    jobs_dir = svc_root / "jobs"
    if jobs_dir.exists():
        for path in sorted(jobs_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            job_state = record.get("state", "unknown")
            if job_state in jobs:
                jobs[job_state] += 1
            job_rows.append({
                "id": record.get("id", path.stem),
                "state": job_state,
                "priority": record.get("priority"),
                "submitted_s": record.get("submitted_s"),
                "cells": len(record.get("cells", {})),
                "done": record.get("done"),
                "failed": record.get("failed"),
                "cache_hits": record.get("cache_hits"),
                "executed": record.get("executed"),
                "warm_hits": record.get("warm_hits"),
                "warm_rate": record.get("warm_rate"),
                "batch_replays": record.get("batch_replays"),
                "queue_wait_s": record.get("queue_wait_s"),
                "wall_s": record.get("wall_s"),
            })
    job_rows.sort(key=lambda row: row.get("submitted_s") or 0.0)
    finished = [row for row in job_rows
                if row["state"] in ("done", "failed")]
    warm_hits = sum(row.get("warm_hits") or 0 for row in finished)
    warm_cells = sum(row.get("cells") or 0 for row in finished)
    return {
        "svc_root": str(svc_root),
        "supervisor": {
            "alive": alive,
            "pid": state.get("pid") if state else None,
            "state": (state.get("state") if state else "absent"),
            "workers": worker_count,
            "cache_dir": state.get("cache_dir") if state else None,
        },
        "queue": {"pending": queue.depth(),
                  "capacity": queue.capacity},
        "jobs": jobs,
        "job_list": job_rows,
        "workers": workers,
        "warm": {
            "warm_hits": warm_hits,
            "cells": warm_cells,
            "rate": (round(warm_hits / warm_cells, 6)
                     if warm_cells else None),
        },
    }


def format_status(status: dict) -> str:
    """Human-readable rendering of :func:`service_status`."""
    sup = status["supervisor"]
    lines = [
        f"service {status['svc_root']}",
        (f"  supervisor: {sup['state']}"
         f"{' (pid ' + str(sup['pid']) + ')' if sup['pid'] else ''}"
         f"{' [alive]' if sup['alive'] else ''}"),
        (f"  queue: {status['queue']['pending']} pending / "
         f"capacity {status['queue']['capacity']}"),
        (f"  jobs: {status['jobs']['queued']} queued, "
         f"{status['jobs']['running']} running, "
         f"{status['jobs']['done']} done, "
         f"{status['jobs']['failed']} failed"),
    ]
    warm = status["warm"]
    if warm["cells"]:
        lines.append(
            f"  warm: {warm['warm_hits']}/{warm['cells']} cells "
            f"({100.0 * warm['rate']:.1f}%) across finished jobs")
    for worker in status["workers"]:
        age = worker["heartbeat_age_s"]
        beat = f" (beat {age:.1f}s ago)" if age is not None else ""
        lines.append(
            f"  worker {worker['index']}: {worker['state']}{beat}")
        lines.append(
            f"    cells={worker['cells']} hits={worker['cache_hits']} "
            f"executed={worker['executed']} warm={worker['warm_hits']} "
            f"batch_replays={worker['batch_replays']} "
            f"memo={worker['trace_memo_hits']}/"
            f"{worker['trace_memo_hits'] + worker['trace_memo_misses']} "
            f"restarts={worker['restarts']}")
    for row in status["job_list"][-8:]:
        label = f"  job {row['id']}: {row['state']}"
        if row["state"] in ("done", "failed"):
            label += (f" ({row['cells']} cells, "
                      f"{row.get('warm_hits') or 0} warm, "
                      f"{row.get('batch_replays') or 0} batch replays, "
                      f"wall {row.get('wall_s') or 0:.3f}s)")
        lines.append(label)
    return "\n".join(lines)


__all__ = [
    "JobFailed",
    "format_status",
    "read_job",
    "service_status",
    "submit_job",
    "svc_root_for",
    "wait_job",
]
