"""Transaction threads: replayable execution contexts.

A :class:`TxnThread` wraps one :class:`TransactionTrace` with a replay
cursor and timing/accounting state.  Threads can be suspended and resumed
at any event boundary, which is what STREX's context switching and
SLICC's migration require (DESIGN.md, decision 2).
"""

from __future__ import annotations

from typing import Optional

from repro.trace.trace import TransactionTrace


class TxnThread:
    """One in-flight transaction."""

    __slots__ = (
        "thread_id",
        "trace",
        "pos",
        "arrival",
        "start_time",
        "finish_time",
        "instructions_done",
        "context_switches",
        "migrations",
        "recent_misses",
    )

    def __init__(self, thread_id: int, trace: TransactionTrace,
                 arrival: int = 0):
        self.thread_id = thread_id
        self.trace = trace
        self.pos = 0
        self.arrival = arrival
        self.start_time: Optional[int] = None
        self.finish_time: Optional[int] = None
        self.instructions_done = 0
        self.context_switches = 0
        self.migrations = 0
        # Tail of the thread's L1-I miss stream; SLICC's missed-tag queue.
        self.recent_misses: list = []

    @property
    def txn_type(self) -> str:
        """Transaction type name."""
        return self.trace.txn_type

    @property
    def finished(self) -> bool:
        """True once the cursor has consumed the whole trace."""
        return self.pos >= len(self.trace)

    @property
    def latency(self) -> Optional[int]:
        """Queue-entry-to-completion latency (Fig. 7's metric)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival

    def __repr__(self) -> str:
        state = "done" if self.finished else f"pos={self.pos}"
        return (
            f"TxnThread({self.thread_id}, {self.txn_type}, {state})"
        )
