"""Batch replay layer: run fast-forward support and slice memoization.

Stratified execution makes simulations *self-similar twice over*: within
a run, slices are long strings of L1-I hits replaying phases a
predecessor already warmed, and across runs, the perf harness / sweep
machinery executes byte-identical simulations back to back.  This
module exploits the second kind; the first is handled in-loop by
:meth:`SimulationEngine._run_events_tight_age_ff` using the trace run
tables (:meth:`repro.trace.trace.TransactionTrace.run_tables`) and the
per-core fast-forward memo that both key residency on
:attr:`repro.cache.cache.Cache.version`.

Warm-slice memoization records, once, the *observable delta* of every
``run_events`` slice of a simulation -- cycle/instruction advance,
cache snapshots and structural L2 fill lists, directory/DRAM/NoC state
-- keyed on the simulation's identity (canonical config, scheduler
shape, trace content digests).  Later constructions of the same
simulation replay the deltas instead of interpreting events, after
validating per slice that the engine is exactly where the recording
was (same core/thread/cursor/clock and the same cache mutation
versions).  Any out-of-band mutation -- a flush, an invalidate, a
direct cache access between slices -- bumps a version and the replay
falls back, permanently and safely, to the scalar loops (state is
fully materialized after every applied slice).

The recordable profile is deliberately narrow (DESIGN.md, decision 16):

* the age kernel (fast path, LRU/FIFO on L1-I, L1-D *and* L2 -- the
  policies that never consume RNG, so skipping replayed fills cannot
  desynchronize stochastic policies);
* the deterministic run-to-completion schedulers (baseline, SMT);
* no prefetcher, no armed invariant oracles (``REPRO_SIM_CHECK=1``),
  no ``REPRO_SIM_NOBATCH=1``;
* per call: tag 0, no switch monitoring, no miss log, no victim
  callbacks anywhere.

Everything else falls back to the scalar loops, which remain the
semantics of record: a recording is made *through*
``_run_events_fast`` (hooking the hierarchy's rebindable L2 accessor),
so the recorded deltas are the scalar kernel's own side effects.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import List, Optional

from repro.cache.hierarchy import CoherenceState
from repro.fastpath import nobatch_mode
from repro.sched.base import BaselineScheduler
from repro.sched.smt import SmtBaselineScheduler

#: Retained recordings (LRU).  Each holds full per-slice snapshots --
#: tens of MB at default perf-bench scale -- so the bound is small.
REGISTRY_CAPACITY = 2

#: Remembered first-sighting identities (recording starts on the
#: second sighting, so one-shot simulations never pay for capture).
SEEN_CAPACITY = 64


class ReplayRegistry:
    """Per-process store of recorded simulations.

    Lifecycle per identity: first sighting is only remembered; the
    second records; the third and later replay.  ``recordings`` /
    ``replays`` / ``fallbacks`` / ``aborts`` are cumulative counters
    (the differential tests assert on them).
    """

    def __init__(self, capacity: int = REGISTRY_CAPACITY):
        self.capacity = capacity
        self._seen: "OrderedDict[tuple, int]" = OrderedDict()
        self._logs: "OrderedDict[tuple, list]" = OrderedDict()
        self.recordings = 0
        self.replays = 0
        self.fallbacks = 0
        self.aborts = 0

    def mode_for(self, key: tuple):
        """Classify a sighting: ``("replay", log)``, ``("record",
        None)`` or ``("off", None)``; bumps the sighting count."""
        log = self._logs.get(key)
        if log is not None:
            self._logs.move_to_end(key)
            return "replay", log
        count = self._seen.get(key, 0)
        self._seen[key] = count + 1
        self._seen.move_to_end(key)
        while len(self._seen) > SEEN_CAPACITY:
            self._seen.popitem(last=False)
        return ("record", None) if count >= 1 else ("off", None)

    def store(self, key: tuple, log: list) -> None:
        """Retain a completed recording (evicting LRU past capacity)."""
        self._logs[key] = log
        self._logs.move_to_end(key)
        while len(self._logs) > self.capacity:
            self._logs.popitem(last=False)
        self.recordings += 1

    def clear(self) -> None:
        """Drop all state (tests)."""
        self._seen.clear()
        self._logs.clear()
        self.recordings = 0
        self.replays = 0
        self.fallbacks = 0
        self.aborts = 0


_REGISTRY = ReplayRegistry()


def registry() -> ReplayRegistry:
    """The process-wide registry."""
    return _REGISTRY


def reset_registry() -> None:
    """Drop all recordings and counters (test isolation)."""
    _REGISTRY.clear()


def _identity(engine) -> Optional[tuple]:
    """Content identity of a simulation, or None if unclassifiable.

    Canonical config JSON + exact scheduler shape + per-trace content
    digests: two engines with equal identities execute byte-identical
    simulations (the schedulers below are deterministic functions of
    engine state, and the engine itself is deterministic).
    """
    sched = engine.scheduler
    if type(sched) is BaselineScheduler:
        sched_key = ("base", sched.slice_events)
    elif type(sched) is SmtBaselineScheduler:
        sched_key = ("smt", sched.ways, sched.SMT_QUANTUM)
    else:
        return None
    config_key = json.dumps(engine.config.to_dict(), sort_keys=True)
    trace_key = tuple(
        thread.trace.content_key() for thread in engine.threads
    )
    return (config_key, sched_key, trace_key)


def attach(engine) -> None:
    """Install a recorder or replayer on ``engine._batch`` if eligible."""
    engine._batch = None
    if not engine._age_kernel or engine.prefetcher_active:
        return
    if engine.checker is not None or nobatch_mode():
        return
    hier = engine.hier
    # _age_kernel already guarantees age-MRU L1-I and L2; the L1-D
    # must be age-MRU too so no replayed fill ever skips an RNG draw.
    if hier.l1d[0].policy.insert_mode != "age_mru":
        return
    key = _identity(engine)
    if key is None:
        return
    mode, log = _REGISTRY.mode_for(key)
    if mode == "record":
        engine._batch = _Recorder(engine, key)
    elif mode == "replay":
        engine._batch = _Replayer(engine, log)


def _all_caches(hier) -> list:
    return list(hier.l1i) + list(hier.l1d) + list(hier.l2)


def _stats4(cache) -> tuple:
    st = cache.stats
    return (st.hits, st.misses, st.evictions, st.invalidations)


class _Recorder:
    """Runs slices on the scalar kernel while capturing their deltas.

    L2 structural changes are captured *in flight* by hooking the
    hierarchy's rebindable ``_l2_access`` (the same mechanism the fast
    path itself uses): fills are logged as ordered ``(slice, slot,
    block)`` placements -- replay re-derives evictions from them --
    and every touched slot's final age is patched afterwards.  The
    small caches (the slice's own L1-I, any L1-D whose stats moved)
    are snapshotted whole after the call.
    """

    def __init__(self, engine, key: tuple):
        self.engine = engine
        self.key = key
        self.calls: List[tuple] = []
        self.aborted = False
        hier = engine.hier
        self._caches = _all_caches(hier)
        self._num_slices = len(hier.l2)
        self._fills: List[tuple] = []
        self._touched: set = set()
        self._real_l2_access = hier._l2_access
        hier._l2_access = self._record_l2_access
        self._hooked = True

    def _record_l2_access(self, core: int, block: int) -> int:
        hier = self.engine.hier
        sid = block % self._num_slices
        where = hier.l2[sid]._where
        pre = where.get(block)
        latency = self._real_l2_access(core, block)
        if pre is None:
            slot = where[block]
            self._fills.append((sid, slot, block))
            self._touched.add((sid, slot))
        else:
            self._touched.add((sid, pre))
        return latency

    def _restore(self) -> None:
        if self._hooked:
            self.engine.hier._l2_access = self._real_l2_access
            self._hooked = False

    def _abort(self) -> None:
        self.aborted = True
        self._restore()
        _REGISTRY.aborts += 1

    def dispatch(
        self, core, thread, max_events, tag,
        stop_on_switch, miss_log, stop_after_misses,
    ) -> Optional[int]:
        engine = self.engine
        caches = self._caches
        if (
            tag != 0
            or stop_on_switch
            or miss_log is not None
            or stop_after_misses
            or any(c.victim_callback is not None for c in caches)
        ):
            self._abort()
            return None
        hier = engine.hier
        pre = (
            core,
            thread.thread_id,
            thread.pos,
            max_events,
            engine.core_time[core],
            tuple(c.version for c in caches),
        )
        pre_pos = thread.pos
        pre_core_time = engine.core_time[core]
        pre_instructions = thread.instructions_done
        l1d_pre = [_stats4(c) for c in hier.l1d]
        self._fills = []
        self._touched = set()

        executed = engine._run_events_fast(
            core, thread, max_events, tag, False, None, 0)

        l1i = hier.l1i[core]
        l1i_snap = (
            dict(l1i._where),
            l1i._slot_blocks[:],
            l1i._slot_tags[:],
            l1i._set_len[:],
            l1i.policy._ages[:],
            l1i.policy._tick,
            l1i.policy._low,
            _stats4(l1i),
        )
        l1d_snaps = []
        for c, cache in enumerate(hier.l1d):
            if _stats4(cache) == l1d_pre[c]:
                continue
            l1d_snaps.append((
                c,
                dict(cache._where),
                cache._slot_blocks[:],
                cache._slot_tags[:],
                cache._set_len[:],
                cache.policy._ages[:],
                cache.policy._tick,
                cache.policy._low,
                _stats4(cache),
                set(hier._lost_to_invalidation[c]),
                hier.coherence_misses[c],
            ))
        l2_ages = [
            (sid, slot, hier.l2[sid].policy._ages[slot])
            for sid, slot in self._touched
        ]
        l2_ticks = [c.policy._tick for c in hier.l2]
        l2_lows = [c.policy._low for c in hier.l2]
        l2_stats = [_stats4(c) for c in hier.l2]
        dblocks = thread.trace.event_columns()[2]
        touched_d = {
            dblocks[i]
            for i in range(pre_pos, thread.pos)
            if dblocks[i] >= 0
        }
        directory = hier._directory
        dir_patch = []
        for block in touched_d:
            entry = directory.get(block)
            if entry is not None:
                dir_patch.append(
                    (block, entry.owner, tuple(entry.sharers)))
        dram = hier.dram
        self.calls.append((
            pre,
            executed,
            thread.pos,
            thread.instructions_done - pre_instructions,
            engine.core_time[core] - pre_core_time,
            l1i_snap,
            l1d_snaps,
            self._fills,
            l2_ages,
            l2_ticks,
            l2_lows,
            l2_stats,
            dir_patch,
            (dram._open_rows[:], dram.row_hits, dram.row_misses),
            (hier.noc.messages, hier.noc.total_hops),
            hier.l2_demand_traffic,
            tuple(c.version for c in caches),
        ))
        return executed

    def finish(self) -> None:
        """Unhook; retain the recording if the run completed cleanly."""
        self._restore()
        engine = self.engine
        if self.aborted:
            return
        if engine.finished_threads != len(engine.threads):
            return
        _REGISTRY.store(self.key, self.calls)


class _Replayer:
    """Applies a recording's deltas in place of event interpretation.

    Every slice is validated against the recording's precondition --
    call shape, core/thread/cursor, core clock, and the mutation
    versions of all caches -- before any state is touched.  On the
    first mismatch the replayer detaches (the engine falls back to the
    scalar loops); because each applied slice materializes *all* state
    (not just result-visible aggregates), the fallback point is a
    bona fide simulation state and the remainder computes the same
    bytes the scalar kernel would have produced from the start.
    """

    def __init__(self, engine, calls: list):
        self.engine = engine
        self.calls = calls
        self.cursor = 0
        self.dead = False
        self._caches = _all_caches(engine.hier)

    def _fallback(self) -> None:
        self.dead = True
        _REGISTRY.fallbacks += 1

    def dispatch(
        self, core, thread, max_events, tag,
        stop_on_switch, miss_log, stop_after_misses,
    ) -> Optional[int]:
        engine = self.engine
        calls = self.calls
        cursor = self.cursor
        if cursor >= len(calls):
            self._fallback()
            return None
        (pre, executed, pos_after, d_instructions, d_cycles,
         l1i_snap, l1d_snaps, l2_fills, l2_ages, l2_ticks, l2_lows,
         l2_stats, dir_patch, dram_snap, noc_snap, l2_traffic,
         versions_post) = calls[cursor]
        caches = self._caches
        if (
            tag != 0
            or stop_on_switch
            or miss_log is not None
            or stop_after_misses
            or any(c.victim_callback is not None for c in caches)
            or pre != (
                core,
                thread.thread_id,
                thread.pos,
                max_events,
                engine.core_time[core],
                tuple(c.version for c in caches),
            )
        ):
            self._fallback()
            return None

        hier = engine.hier
        l1i = hier.l1i[core]
        (where, blocks, tags, set_len, ages, tick, low,
         stats4) = l1i_snap
        l1i._where.clear()
        l1i._where.update(where)
        l1i._slot_blocks[:] = blocks
        l1i._slot_tags[:] = tags
        l1i._set_len[:] = set_len
        pol = l1i.policy
        pol._ages[:] = ages
        pol._tick = tick
        pol._low = low
        st = l1i.stats
        st.hits, st.misses, st.evictions, st.invalidations = stats4
        for (c, where, blocks, tags, set_len, ages, tick, low,
             stats4, lost, coherence) in l1d_snaps:
            l1d = hier.l1d[c]
            l1d._where.clear()
            l1d._where.update(where)
            l1d._slot_blocks[:] = blocks
            l1d._slot_tags[:] = tags
            l1d._set_len[:] = set_len
            pol = l1d.policy
            pol._ages[:] = ages
            pol._tick = tick
            pol._low = low
            st = l1d.stats
            st.hits, st.misses, st.evictions, st.invalidations = stats4
            lost_set = hier._lost_to_invalidation[c]
            lost_set.clear()
            lost_set.update(lost)
            hier.coherence_misses[c] = coherence
        l2 = hier.l2
        for sid, slot, block in l2_fills:
            cache = l2[sid]
            blocks2 = cache._slot_blocks
            old = blocks2[slot]
            if old is None:
                cache._set_len[slot // cache.assoc] += 1
            else:
                del cache._where[old]
            blocks2[slot] = block
            cache._where[block] = slot
        for sid, slot, age in l2_ages:
            l2[sid].policy._ages[slot] = age
        for sid, cache in enumerate(l2):
            pol = cache.policy
            pol._tick = l2_ticks[sid]
            pol._low = l2_lows[sid]
            st = cache.stats
            (st.hits, st.misses, st.evictions,
             st.invalidations) = l2_stats[sid]
        directory = hier._directory
        for block, owner, sharers in dir_patch:
            entry = directory.get(block)
            if entry is None:
                entry = CoherenceState()
                directory[block] = entry
            entry.owner = owner
            entry.sharers = set(sharers)
        dram = hier.dram
        open_rows, row_hits, row_misses = dram_snap
        dram._open_rows[:] = open_rows
        dram.row_hits = row_hits
        dram.row_misses = row_misses
        noc = hier.noc
        noc.messages, noc.total_hops = noc_snap
        hier.l2_demand_traffic = l2_traffic
        for cache, version in zip(caches, versions_post):
            cache.version = version
        thread.pos = pos_after
        thread.instructions_done += d_instructions
        engine.total_instructions += d_instructions
        engine.core_time[core] += d_cycles
        self.cursor = cursor + 1
        return executed

    def finish(self) -> None:
        if not self.dead and self.cursor == len(self.calls):
            _REGISTRY.replays += 1
