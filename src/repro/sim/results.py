"""Run results and derived metrics.

The paper reports throughput as "the inverse of the number of cycles
required to execute all transactions" (Section 5.1) and misses as MPKI.
:class:`RunResult` captures everything a single simulation produced;
comparisons across schedulers/core counts are plain arithmetic on these.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class RunResult:
    """Everything measured in one simulation run."""

    workload: str
    scheduler: str
    num_cores: int
    cycles: int
    busy_cycles: int
    instructions: int
    i_misses: int
    d_misses: int
    transactions: int
    latencies: List[int] = field(default_factory=list)
    context_switches: int = 0
    migrations: int = 0
    coherence_misses: int = 0
    l2_misses: int = 0
    l2_traffic: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def i_mpki(self) -> float:
        """L1 instruction misses per kilo-instruction."""
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.i_misses / self.instructions

    @property
    def d_mpki(self) -> float:
        """L1 data misses per kilo-instruction."""
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.d_misses / self.instructions

    @property
    def throughput(self) -> float:
        """Transactions per mega-cycle of mean per-core busy time.

        The paper measures throughput over a continuous 1.2B-instruction
        stream (steady state).  A finite batch leaves a scheduling tail
        (the last team on the slowest core), so the steady-state proxy is
        work-per-cycle: transactions divided by the mean busy time per
        core.  The makespan is still available as :attr:`cycles`.
        """
        denominator = self.busy_cycles / max(1, self.num_cores)
        if denominator <= 0:
            return 0.0
        return 1e6 * self.transactions / denominator

    def relative_throughput(self, baseline: "RunResult") -> float:
        """Throughput of this run normalized to ``baseline`` (Fig. 6)."""
        if baseline.throughput <= 0:
            return 0.0
        return self.throughput / baseline.throughput

    @property
    def mean_latency(self) -> float:
        """Mean transaction latency in cycles."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def to_dict(self) -> dict:
        """Plain-dict form; JSON-serializable (every field is scalar,
        a list of ints, or a str->float map).  Round-trips through
        :meth:`from_dict` bit-identically, which the `repro.exp` result
        cache relies on."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RunResult keys: {sorted(unknown)}")
        return cls(**data)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.workload:>10} {self.scheduler:>8} "
            f"cores={self.num_cores:<2} cycles={self.cycles:<12} "
            f"I-MPKI={self.i_mpki:6.2f} D-MPKI={self.d_mpki:6.2f} "
            f"thr={self.throughput:8.3f} txn/Mcyc"
        )
