"""High-level simulation entry points.

:func:`simulate` is the one-call API: pick a scheduler (and optional
prefetcher) by name and run a set of traces through the engine.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.config import SystemConfig
from repro.prefetch.base import NoPrefetcher
from repro.prefetch.nextline import NextLinePrefetcher
from repro.prefetch.pif import PifIdealPrefetcher
from repro.prefetch.tifs import TifsPrefetcher
from repro.sched.base import BaselineScheduler
from repro.sched.hybrid import HybridScheduler
from repro.sched.slicc import SliccScheduler
from repro.sched.smt import SmtBaselineScheduler
from repro.sched.strex import StrexScheduler
from repro.sim.engine import SimulationEngine
from repro.sim.results import RunResult
from repro.trace.trace import TransactionTrace

SCHEDULERS: Dict[str, Callable] = {
    "base": BaselineScheduler,
    "strex": StrexScheduler,
    "slicc": SliccScheduler,
    "hybrid": HybridScheduler,
    "smt": SmtBaselineScheduler,
}

PREFETCHERS: Dict[str, Callable] = {
    "none": NoPrefetcher,
    "nextline": NextLinePrefetcher,
    "pif": PifIdealPrefetcher,
    "tifs": TifsPrefetcher,
}


def validate_run_request(
    scheduler: str,
    prefetcher: str = "none",
    team_size: Optional[int] = None,
) -> None:
    """Raise ``ValueError`` for combos :func:`simulate` would reject.

    Cheap (no engine, no traces), so callers that queue work for later
    execution — the sweep service's ``submit`` — can fail fast instead
    of shipping a cell that can only die inside a worker.
    """
    if scheduler not in SCHEDULERS:
        raise ValueError(
            f"unknown scheduler {scheduler!r}; "
            f"choose from {sorted(SCHEDULERS)}"
        )
    if prefetcher not in PREFETCHERS:
        raise ValueError(
            f"unknown prefetcher {prefetcher!r}; "
            f"choose from {sorted(PREFETCHERS)}"
        )
    if team_size is not None:
        if scheduler not in ("strex", "hybrid"):
            raise ValueError(
                f"team_size only applies to the 'strex' and 'hybrid' "
                f"schedulers, not {scheduler!r}"
            )
        if team_size < 1:
            raise ValueError(
                f"team_size must be positive, got {team_size}")


def simulate(
    config: SystemConfig,
    traces: List[TransactionTrace],
    scheduler: str = "base",
    workload_name: str = "",
    prefetcher: str = "none",
    team_size: Optional[int] = None,
) -> RunResult:
    """Run ``traces`` under a named scheduler and prefetcher.

    Args:
        config: the simulated system.
        traces: transaction traces in arrival order.
        scheduler: one of ``base``, ``strex``, ``slicc``, ``hybrid``.
        workload_name: label recorded in the result.
        prefetcher: one of ``none``, ``nextline``, ``pif``, ``tifs``.
        team_size: optional STREX team-size override (Fig. 7/8 sweeps).
            Only meaningful for the ``strex`` and ``hybrid`` schedulers
            (the hybrid forwards it to its STREX delegate); passing it
            with any other scheduler raises :class:`ValueError` rather
            than silently ignoring it.

    Returns:
        The run's :class:`RunResult`.
    """
    validate_run_request(scheduler, prefetcher, team_size)
    scheduler_cls = SCHEDULERS[scheduler]
    prefetcher_cls = PREFETCHERS[prefetcher]

    if scheduler == "strex" and team_size is not None:
        def scheduler_factory(engine):
            return StrexScheduler(engine, team_size=team_size)
    elif scheduler == "hybrid" and team_size is not None:
        def scheduler_factory(engine):
            return HybridScheduler(engine, team_size=team_size)
    else:
        scheduler_factory = scheduler_cls

    prefetcher_factory = None
    if prefetcher != "none":
        prefetcher_factory = prefetcher_cls

    engine = SimulationEngine(
        config, traces, scheduler_factory, prefetcher_factory
    )
    result = engine.run(workload_name)
    if prefetcher != "none":
        result.scheduler = f"{scheduler}+{prefetcher}"
    return result
