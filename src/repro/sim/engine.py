"""The multicore simulation engine.

The engine replays a set of transaction traces over the memory hierarchy
under a pluggable scheduler.  Cores advance independent local clocks;
a min-heap interleaves them so that shared-L2 and coherence interactions
happen in approximately global time order, with each visit running a
bounded *slice* of events (scheduler-chosen, defaults to a few hundred).

Timing per event (DESIGN.md, decision 4)::

    cycles += ilen * base_cpi                 # pipeline throughput
            + (ifetch_latency - l1i_hit)      # instruction stall
            + (data_latency  - l1d_hit)       # data stall (if any)

L1 hit latency is folded into the base CPI (hits are pipelined); only
the excess over a hit stalls the core.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.cache.hierarchy import MemoryHierarchy
from repro.config import SystemConfig
from repro.prefetch.base import InstructionPrefetcher, NoPrefetcher
from repro.sim.results import RunResult
from repro.sim.thread import TxnThread
from repro.trace.trace import TransactionTrace


class SimulationEngine:
    """Replays traces under a scheduler over a memory hierarchy.

    Args:
        config: the simulated system.
        traces: transaction traces, in arrival order.
        scheduler_factory: ``factory(engine) -> Scheduler``.
        prefetcher_factory: optional ``factory(num_cores) -> prefetcher``.
    """

    #: Default number of events per core visit.
    DEFAULT_SLICE_EVENTS = 384

    def __init__(
        self,
        config: SystemConfig,
        traces: List[TransactionTrace],
        scheduler_factory: Callable[["SimulationEngine"], "object"],
        prefetcher_factory: Optional[
            Callable[[int], InstructionPrefetcher]
        ] = None,
    ):
        if not traces:
            raise ValueError("need at least one trace")
        self.config = config
        prefetcher = (
            prefetcher_factory(config.num_cores)
            if prefetcher_factory
            else NoPrefetcher(config.num_cores)
        )
        self.prefetcher_active = prefetcher.name != "none"
        self.hier = MemoryHierarchy(config, prefetcher)
        self.threads = [
            TxnThread(i, trace) for i, trace in enumerate(traces)
        ]
        self.core_time: List[int] = [0] * config.num_cores
        # Cycles a core spent idle-waiting (clock bumped forward to a
        # migration's arrival time); excluded from busy-time throughput.
        self.idle_cycles: List[int] = [0] * config.num_cores
        self.total_instructions = 0
        self.finished_threads = 0
        # Set by STREX's victim callback during run_events.
        self.switch_requested = False
        self.scheduler = scheduler_factory(self)

    # ------------------------------------------------------------------
    # Event replay
    # ------------------------------------------------------------------
    def run_events(
        self,
        core: int,
        thread: TxnThread,
        max_events: int,
        tag: int = 0,
        stop_on_switch: bool = False,
        miss_log: Optional[list] = None,
        stop_after_misses: int = 0,
    ) -> int:
        """Replay up to ``max_events`` of ``thread`` on ``core``.

        Advances ``core_time[core]``; stops early if the thread finishes
        or (with ``stop_on_switch``) when :attr:`switch_requested` is set
        by the L1-I victim callback.  Missed instruction blocks are
        appended to ``miss_log`` when provided (SLICC's missed-tag
        queue); with ``stop_after_misses`` > 0 the slice also ends once
        that many misses accumulate in ``miss_log`` -- SLICC's burst
        detector must fire at the *start* of a cold segment, not after a
        whole slice has been fetched into the wrong core.

        Returns:
            The number of events executed.
        """
        trace = thread.trace
        iblocks = trace.iblocks
        ilens = trace.ilens
        dblocks = trace.dblocks
        dwrites = trace.dwrites
        pos = thread.pos
        end = min(len(iblocks), pos + max_events)
        hier = self.hier
        l1i = hier.l1i[core]
        l1i_access = l1i.access
        l1i_hit_latency = l1i.config.hit_latency
        l1d_hit_latency = hier.l1d[core].config.hit_latency
        access_data = hier.access_data
        l2_access = hier._l2_access
        prefetcher = hier.prefetcher
        use_prefetcher = self.prefetcher_active
        cpi = self.config.core.base_cpi
        covered_fraction = self.config.core.covered_stall_fraction
        cycles = 0.0
        instructions = 0
        start = pos

        while pos < end:
            iblock = iblocks[pos]
            ilen = ilens[pos]
            instructions += ilen
            hit = l1i_access(iblock, tag)
            cycles += ilen * cpi
            if not hit:
                if use_prefetcher:
                    covered = prefetcher.covers(core, iblock)
                    prefetcher.record(covered)
                    prefetcher.on_fetch(core, iblock, False)
                    latency = l2_access(core, iblock)
                    if covered:
                        # Prefetched, but the block still consumed L2
                        # bandwidth (the paper's partial contention
                        # model for PIF).
                        cycles += latency * covered_fraction
                    else:
                        cycles += latency
                else:
                    cycles += l2_access(core, iblock)
                if miss_log is not None:
                    miss_log.append(iblock)
            elif use_prefetcher:
                prefetcher.on_fetch(core, iblock, True)
            dblock = dblocks[pos]
            if dblock >= 0:
                cycles += (
                    access_data(core, dblock, dwrites[pos])
                    - l1d_hit_latency
                )
            pos += 1
            if stop_on_switch and self.switch_requested:
                break
            if stop_after_misses and miss_log is not None \
                    and len(miss_log) >= stop_after_misses:
                break

        thread.pos = pos
        thread.instructions_done += instructions
        self.total_instructions += instructions
        self.core_time[core] += int(cycles)
        return pos - start

    # ------------------------------------------------------------------
    # Thread lifecycle helpers (called by schedulers)
    # ------------------------------------------------------------------
    def mark_started(self, core: int, thread: TxnThread) -> None:
        """Record a thread's first dispatch."""
        if thread.start_time is None:
            thread.start_time = self.core_time[core]

    def mark_finished(self, core: int, thread: TxnThread) -> None:
        """Record a thread's completion."""
        thread.finish_time = self.core_time[core]
        self.finished_threads += 1

    def charge(self, core: int, cycles: int) -> None:
        """Charge overhead cycles (context switch, migration) to a core."""
        self.core_time[core] += cycles

    def advance_clock(self, core: int, to_time: int) -> None:
        """Move a core's clock forward to ``to_time`` (idle waiting for
        an in-flight migration); the gap is recorded as idle, not busy."""
        gap = to_time - self.core_time[core]
        if gap > 0:
            self.core_time[core] = to_time
            self.idle_cycles[core] += gap

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, workload_name: str = "") -> RunResult:
        """Run all threads to completion and collect results."""
        scheduler = self.scheduler
        scheduler.start()
        heap = [
            (self.core_time[core], core)
            for core in range(self.config.num_cores)
            if scheduler.has_work(core)
        ]
        heapq.heapify(heap)
        self._in_heap = {core for _, core in heap}

        while self.finished_threads < len(self.threads):
            if not heap:
                raise RuntimeError(
                    "deadlock: unfinished threads but no runnable core"
                )
            _, core = heapq.heappop(heap)
            self._in_heap.discard(core)
            if not scheduler.has_work(core):
                continue
            scheduler.run_slice(core)
            if scheduler.has_work(core):
                self._activate(heap, core)
            # Schedulers may have handed work to other (parked) cores.
            for other in scheduler.drain_wakeups():
                if scheduler.has_work(other):
                    self._activate(heap, other)

        return self._collect(workload_name)

    def _activate(self, heap: list, core: int) -> None:
        if core not in self._in_heap:
            heapq.heappush(heap, (self.core_time[core], core))
            self._in_heap.add(core)

    def _collect(self, workload_name: str) -> RunResult:
        latencies = [
            t.latency for t in self.threads if t.latency is not None
        ]
        busy_cores = [t for t in self.core_time if t > 0]
        cycles = max(busy_cores) if busy_cores else 0
        return RunResult(
            workload=workload_name,
            scheduler=self.scheduler.name,
            num_cores=self.config.num_cores,
            cycles=cycles,
            busy_cycles=sum(self.core_time) - sum(self.idle_cycles),
            instructions=self.total_instructions,
            i_misses=self.hier.instruction_misses(),
            d_misses=self.hier.data_misses(),
            transactions=len(self.threads),
            latencies=latencies,
            context_switches=sum(
                t.context_switches for t in self.threads
            ),
            migrations=sum(t.migrations for t in self.threads),
            coherence_misses=sum(self.hier.coherence_misses),
            l2_misses=sum(c.stats.misses for c in self.hier.l2),
            l2_traffic=self.hier.l2_demand_traffic,
            extra={
                "prefetch_coverage": self.hier.prefetcher.coverage,
            },
        )
