"""The multicore simulation engine.

The engine replays a set of transaction traces over the memory hierarchy
under a pluggable scheduler.  Cores advance independent local clocks;
a min-heap interleaves them so that shared-L2 and coherence interactions
happen in approximately global time order, with each visit running a
bounded *slice* of events (scheduler-chosen, defaults to a few hundred).

Timing per event (DESIGN.md, decision 4)::

    cycles += ilen * base_cpi                 # pipeline throughput
            + (ifetch_latency - l1i_hit)      # instruction stall
            + (data_latency  - l1d_hit)       # data stall (if any)

L1 hit latency is folded into the base CPI (hits are pipelined); only
the excess over a hit stalls the core.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro import obs
from repro.cache.hierarchy import MemoryHierarchy
from repro.config import SystemConfig
from repro.fastpath import nobatch_mode, reference_mode
from repro.prefetch.base import InstructionPrefetcher, NoPrefetcher
from repro.sim import batch as batch_replay
from repro.sim.results import RunResult
from repro.sim.thread import TxnThread
from repro.trace.trace import TransactionTrace
from repro.verify.oracles import make_checker


class SimulationEngine:
    """Replays traces under a scheduler over a memory hierarchy.

    Args:
        config: the simulated system.
        traces: transaction traces, in arrival order.
        scheduler_factory: ``factory(engine) -> Scheduler``.
        prefetcher_factory: optional ``factory(num_cores) -> prefetcher``.
    """

    #: Default number of events per core visit.
    DEFAULT_SLICE_EVENTS = 384

    def __init__(
        self,
        config: SystemConfig,
        traces: List[TransactionTrace],
        scheduler_factory: Callable[["SimulationEngine"], "object"],
        prefetcher_factory: Optional[
            Callable[[int], InstructionPrefetcher]
        ] = None,
    ):
        if not traces:
            raise ValueError("need at least one trace")
        self.config = config
        prefetcher = (
            prefetcher_factory(config.num_cores)
            if prefetcher_factory
            else NoPrefetcher(config.num_cores)
        )
        self.prefetcher_active = prefetcher.name != "none"
        # Kernel selection is latched at construction so one simulation
        # never mixes the fast and reference paths; the hierarchy below
        # reads the same flag when choosing its cache layout.
        self._fast_kernel = not reference_mode()
        self.hier = MemoryHierarchy(config, prefetcher)
        # The deepest specialization additionally requires always-MRU
        # age policies (LRU/FIFO) on the L1-I and L2 so fills can be
        # inlined as plain array stores.
        self._age_kernel = (
            self._fast_kernel
            and self.hier.l1i[0].policy.insert_mode == "age_mru"
            and self.hier.l2[0].policy.insert_mode == "age_mru"
        )
        self._base_cpi = config.core.base_cpi
        self._l1i_sets = self.hier.l1i[0].num_sets
        if self._age_kernel:
            self._age_statics = self._build_age_statics()
        self.threads = [
            TxnThread(i, trace) for i, trace in enumerate(traces)
        ]
        self.core_time: List[int] = [0] * config.num_cores
        # Cycles a core spent idle-waiting (clock bumped forward to a
        # migration's arrival time); excluded from busy-time throughput.
        self.idle_cycles: List[int] = [0] * config.num_cores
        self.total_instructions = 0
        self.finished_threads = 0
        # Set by STREX's victim callback during run_events.
        self.switch_requested = False
        self.scheduler = scheduler_factory(self)
        # REPRO_SIM_CHECK=1 arms the invariant oracles; like the
        # kernel choice, the decision is latched at construction.
        self.checker = make_checker(self)
        # Batch replay layer (repro.sim.batch).  Hit-run fast-forward
        # needs the age kernel, no armed oracles, and no NOBATCH
        # override; the per-core memo maps a run's distinct-block tuple
        # -> (residency signature, resident slots).  The signature is
        # out-of-band mutations (l1i.version minus the fills the age
        # loops accounted into it) plus the fill counters of the sets
        # the run involves -- all monotonic, so a sum compares equal
        # iff none of them moved.  Whole-slice record/replay is
        # stricter still -- batch_replay.attach() decides and installs
        # a recorder or replayer as self._batch.
        self._ff_enabled = (
            self._age_kernel
            and self.checker is None
            and not nobatch_mode()
        )
        if self._ff_enabled:
            self._ff_memos = [dict() for _ in range(config.num_cores)]
        # Maintained by the age loops even when fast-forward is off
        # (one int add per L1-I miss) so the signatures stay coherent.
        self._ff_fill_base = [0] * config.num_cores
        self._ff_set_fills = [
            [0] * self._l1i_sets for _ in range(config.num_cores)
        ]
        self.ff_runs = 0
        self.ff_memo_hits = 0
        self._batch = None
        batch_replay.attach(self)

    # ------------------------------------------------------------------
    # Event replay
    # ------------------------------------------------------------------
    def run_events(
        self,
        core: int,
        thread: TxnThread,
        max_events: int,
        tag: int = 0,
        stop_on_switch: bool = False,
        miss_log: Optional[list] = None,
        stop_after_misses: int = 0,
    ) -> int:
        """Replay up to ``max_events`` of ``thread`` on ``core``.

        Advances ``core_time[core]``; stops early if the thread finishes
        or (with ``stop_on_switch``) when :attr:`switch_requested` is set
        by the L1-I victim callback.  Missed instruction blocks are
        appended to ``miss_log`` when provided (SLICC's missed-tag
        queue); with ``stop_after_misses`` > 0 the slice also ends once
        that many misses accumulate in ``miss_log`` -- SLICC's burst
        detector must fire at the *start* of a cold segment, not after a
        whole slice has been fetched into the wrong core.

        Returns:
            The number of events executed.
        """
        batch = self._batch
        if batch is not None:
            executed = batch.dispatch(
                core, thread, max_events, tag, stop_on_switch,
                miss_log, stop_after_misses)
            if executed is not None:
                return executed
            # Validation failed or the call shape left the recordable
            # profile: the layer detaches itself permanently and the
            # slice (and every later one) runs on the scalar loops.
            self._batch = None
        if self._fast_kernel and not self.prefetcher_active:
            if self._age_kernel:
                if miss_log is None and not stop_on_switch:
                    return self._run_events_tight_age(
                        core, thread, max_events, tag)
                return self._run_events_fast_age(
                    core, thread, max_events, tag, stop_on_switch,
                    miss_log, stop_after_misses)
            return self._run_events_fast(core, thread, max_events, tag,
                                         stop_on_switch, miss_log,
                                         stop_after_misses)
        return self._run_events_general(core, thread, max_events, tag,
                                        stop_on_switch, miss_log,
                                        stop_after_misses)

    def _run_events_general(
        self,
        core: int,
        thread: TxnThread,
        max_events: int,
        tag: int = 0,
        stop_on_switch: bool = False,
        miss_log: Optional[list] = None,
        stop_after_misses: int = 0,
    ) -> int:
        """The general event loop (also the reference kernel).

        Handles every feature: prefetchers, STREX switch monitoring,
        SLICC miss logging/bounding.  ``REPRO_SIM_REFERENCE=1`` routes
        all replay through this loop over the reference cache layout;
        the specialized loops below must match it bit for bit.
        """
        trace = thread.trace
        iblocks, ilens, dblocks, dwrites = trace.event_columns()
        pos = thread.pos
        end = min(len(iblocks), pos + max_events)
        hier = self.hier
        l1i = hier.l1i[core]
        l1i_access = l1i.access
        l1i_hit_latency = l1i.config.hit_latency
        l1d_hit_latency = hier.l1d[core].config.hit_latency
        access_data = hier.access_data
        l2_access = hier._l2_access
        prefetcher = hier.prefetcher
        use_prefetcher = self.prefetcher_active
        cpi = self.config.core.base_cpi
        covered_fraction = self.config.core.covered_stall_fraction
        cycles = 0.0
        instructions = 0
        start = pos

        while pos < end:
            iblock = iblocks[pos]
            ilen = ilens[pos]
            instructions += ilen
            hit = l1i_access(iblock, tag)
            cycles += ilen * cpi
            if not hit:
                if use_prefetcher:
                    covered = prefetcher.covers(core, iblock)
                    prefetcher.record(covered)
                    prefetcher.on_fetch(core, iblock, False)
                    latency = l2_access(core, iblock)
                    if covered:
                        # Prefetched, but the block still consumed L2
                        # bandwidth (the paper's partial contention
                        # model for PIF).
                        cycles += latency * covered_fraction
                    else:
                        cycles += latency
                else:
                    cycles += l2_access(core, iblock)
                if miss_log is not None:
                    miss_log.append(iblock)
            elif use_prefetcher:
                prefetcher.on_fetch(core, iblock, True)
            dblock = dblocks[pos]
            if dblock >= 0:
                cycles += (
                    access_data(core, dblock, dwrites[pos])
                    - l1d_hit_latency
                )
            pos += 1
            if stop_on_switch and self.switch_requested:
                break
            if stop_after_misses and miss_log is not None \
                    and len(miss_log) >= stop_after_misses:
                break

        thread.pos = pos
        thread.instructions_done += instructions
        self.total_instructions += instructions
        self.core_time[core] += int(cycles)
        return pos - start

    def _run_events_fast(
        self,
        core: int,
        thread: TxnThread,
        max_events: int,
        tag: int,
        stop_on_switch: bool,
        miss_log: Optional[list],
        stop_after_misses: int,
    ) -> int:
        """Specialized loop: inlined L1 probes, no prefetcher.

        Semantically identical to :meth:`_run_events_general` with
        ``use_prefetcher`` false.  The L1-I hit path is a single dict
        probe plus a tag store and an in-place recency bump (dispatched
        on ``policy.hit_mode``); L1-D read hits that cannot change
        directory state are resolved inline the same way.  Cycle
        additions happen in the same order with the same operands as
        the general loop, so the float total is bit-identical.
        """
        trace = thread.trace
        events = trace.packed_events(self._base_cpi, self._l1i_sets)
        pos = thread.pos
        end = min(len(events), pos + max_events)
        start = pos
        hier = self.hier
        l1i = hier.l1i[core]
        i_where_get = l1i._where.get
        i_tags = l1i._slot_tags
        i_pol = l1i.policy
        i_mode = i_pol.hit_mode
        i_ages = i_pol.hit_array
        i_miss_fill = l1i.miss_fill
        l1d = hier.l1d[core]
        d_where_get = l1d._where.get
        d_tags = l1d._slot_tags
        d_pol = l1d.policy
        d_mode = d_pol.hit_mode
        d_ages = d_pol.hit_array
        l1d_stats = l1d.stats
        l1d_hit_latency = l1d.config.hit_latency
        directory_get = hier._directory.get
        access_data = hier.access_data
        l2_access = hier._l2_access
        cycles = 0.0
        instructions = 0
        i_hits = 0
        d_hits = 0

        while pos < end:
            iblock, icycles, ilen, dblock, dwrite, iset = events[pos]
            instructions += ilen
            cycles += icycles
            slot = i_where_get(iblock)
            if slot is not None:
                i_hits += 1
                i_tags[slot] = tag
                if i_mode == "age":
                    tick = i_pol._tick
                    i_ages[slot] = tick
                    i_pol._tick = tick + 1
                elif i_mode == "zero":
                    i_ages[slot] = 0
                elif i_mode == "call":
                    i_pol.hit_slot(slot)
            else:
                i_miss_fill(iblock, tag, iset)
                cycles += l2_access(core, iblock)
                if miss_log is not None:
                    miss_log.append(iblock)
            if dblock >= 0:
                # Hits whose directory transition is a no-op -- reads
                # with no remote owner, writes already held exclusive
                # -- resolve inline (latency contribution is exactly
                # zero).  Everything else takes the full coherent path.
                slot = d_where_get(dblock)
                entry = directory_get(dblock) \
                    if slot is not None else None
                if entry is None:
                    cycles += (
                        access_data(core, dblock, dwrite)
                        - l1d_hit_latency
                    )
                elif (
                    (entry.owner == core and len(entry.sharers) == 1)
                    if dwrite else
                    (core in entry.sharers
                     and (entry.owner is None
                          or entry.owner == core))
                ):
                    d_hits += 1
                    d_tags[slot] = 0
                    if d_mode == "age":
                        tick = d_pol._tick
                        d_ages[slot] = tick
                        d_pol._tick = tick + 1
                    elif d_mode == "zero":
                        d_ages[slot] = 0
                    elif d_mode == "call":
                        d_pol.hit_slot(slot)
                else:
                    cycles += (
                        access_data(core, dblock, dwrite)
                        - l1d_hit_latency
                    )
            pos += 1
            if stop_on_switch and self.switch_requested:
                break
            if stop_after_misses and miss_log is not None \
                    and len(miss_log) >= stop_after_misses:
                break

        l1i.stats.hits += i_hits
        l1d_stats.hits += d_hits
        thread.pos = pos
        thread.instructions_done += instructions
        self.total_instructions += instructions
        self.core_time[core] += int(cycles)
        return pos - start

    def _build_age_statics(self) -> List[tuple]:
        """Per-core local-variable bundles for the age-specialized loops.

        Everything here is structurally constant for the lifetime of the
        engine -- cache storage arrays are mutated in place, never
        rebound (:meth:`Cache.flush` honours this) -- so the loops pay
        one tuple unpack per slice instead of dozens of attribute
        chases.  The L1-I victim callback is the one dynamic piece
        (STREX installs and removes it at runtime) and is fetched per
        call.
        """
        hier = self.hier
        l2_caches = hier.l2
        l2_shared = (
            [c._where for c in l2_caches],
            [c._slot_blocks for c in l2_caches],
            [c._slot_tags for c in l2_caches],
            [c._set_len for c in l2_caches],
            [c.policy for c in l2_caches],
            [c.policy._ages for c in l2_caches],
            [c.stats for c in l2_caches],
            [c.victim_callback for c in l2_caches],
            l2_caches[0].assoc,
            l2_caches[0].num_sets,
            l2_caches[0]._power_of_two,
            l2_caches[0]._set_mask,
            l2_caches[0].policy.promote_on_hit,
            hier._num_cores,
            hier.dram.access,
            hier._directory.get,
            hier.access_data,
        )
        statics = []
        for core in range(self.config.num_cores):
            l1i = hier.l1i[core]
            l1d = hier.l1d[core]
            statics.append((
                l1i,
                l1i._where,
                l1i._slot_blocks,
                l1i._slot_tags,
                l1i._set_len,
                l1i.assoc,
                l1i.policy,
                l1i.policy._ages,
                l1i.policy.promote_on_hit,
                hier.noc._hops[core],
                hier._l2_roundtrip[core],
                l1d._where.get,
                l1d._slot_tags,
                l1d.policy,
                l1d.policy.hit_mode,
                l1d.policy.hit_array,
                l1d.stats,
                l1d.config.hit_latency,
            ) + l2_shared)
        return statics

    def _run_events_tight_age(
        self,
        core: int,
        thread: TxnThread,
        max_events: int,
        tag: int,
    ) -> int:
        """Tightest loop: the common configuration on LRU/FIFO caches.

        No prefetcher, no miss log, no switch monitoring -- the
        baseline/SMT schedulers and STREX outside its monitored window.
        The entire L1-I and L2 access/fill machinery is inlined as
        dict/array operations over the flat cache layout; replacement
        is the age-stamp dance directly.  Charges and side effects are
        ordered exactly as in :meth:`_run_events_general`.  With no
        early-exit conditions the event walk is a ``for`` over a list
        slice -- no per-event index arithmetic at all.

        When the trace has precomputed hit runs and fast-forwarding is
        enabled, the slice is delegated to
        :meth:`_run_events_tight_age_ff`, which retires whole
        instruction-only runs in bulk and falls back to this scalar
        walk chunk by chunk.
        """
        if self._ff_enabled:
            tables = thread.trace.run_tables(
                self._base_cpi, self._l1i_sets)
            if tables is not None:
                return self._run_events_tight_age_ff(
                    core, thread, max_events, tag, tables)
        (l1i, i_where, i_slot_blocks, i_tags, i_set_len,
         i_assoc, i_pol, i_ages, i_promote, hops_row, lat2_row,
         d_where_get, d_tags, d_pol, d_mode, d_ages, l1d_stats,
         l1d_hit_latency,
         l2_wheres, l2_blocks, l2_tagsl, l2_set_len, l2_pols,
         l2_agesl, l2_statsl, l2_cbs, l2_assoc, l2_nsets, l2_pot,
         l2_mask, l2_promote, num_cores, dram_access, directory_get,
         access_data) = self._age_statics[core]
        trace = thread.trace
        events = trace.packed_events(self._base_cpi, self._l1i_sets)
        i_victim_cb = l1i.victim_callback
        i_where_get = i_where.get
        i_tick = i_pol._tick
        set_fills = self._ff_set_fills[core]
        pos = thread.pos
        end = min(len(events), pos + max_events)
        # The loop cannot exit early, so the slice's instruction count
        # comes from the prefix sums rather than a per-event add.
        prefix = trace.instruction_prefix()
        instructions = prefix[end] - prefix[pos]
        cycles = 0.0
        i_hits = 0
        i_misses = 0
        i_evictions = 0
        d_hits = 0
        noc_hops = 0

        for iblock, icycles, ilen, dblock, dwrite, iset in \
                events[pos:end]:
            cycles += icycles
            slot = i_where_get(iblock)
            if slot is not None:
                i_hits += 1
                i_tags[slot] = tag
                if i_promote:
                    i_ages[slot] = i_tick
                    i_tick += 1
            else:
                # L1-I miss: fill (evicting by oldest age) ...
                i_misses += 1
                set_fills[iset] += 1
                base = iset * i_assoc
                if i_set_len[iset] < i_assoc:
                    slot = i_slot_blocks.index(None, base,
                                               base + i_assoc)
                    i_set_len[iset] += 1
                else:
                    segment = i_ages[base:base + i_assoc]
                    slot = base + segment.index(min(segment))
                    victim = i_slot_blocks[slot]
                    if i_victim_cb is not None:
                        i_victim_cb(victim, i_tags[slot])
                    i_evictions += 1
                    del i_where[victim]
                i_slot_blocks[slot] = iblock
                i_tags[slot] = tag
                i_where[iblock] = slot
                i_ages[slot] = i_tick
                i_tick += 1
                # ... then the home L2 slice over the torus.
                sid = iblock % num_cores
                noc_hops += hops_row[sid]
                latency = lat2_row[sid]
                where2 = l2_wheres[sid]
                slot2 = where2.get(iblock)
                if slot2 is not None:
                    l2_statsl[sid].hits += 1
                    if l2_promote:
                        pol2 = l2_pols[sid]
                        l2_agesl[sid][slot2] = pol2._tick
                        pol2._tick += 1
                    l2_tagsl[sid][slot2] = 0
                else:
                    stats2 = l2_statsl[sid]
                    stats2.misses += 1
                    set2 = (iblock & l2_mask) if l2_pot \
                        else (iblock % l2_nsets)
                    base2 = set2 * l2_assoc
                    blocks2 = l2_blocks[sid]
                    if l2_set_len[sid][set2] < l2_assoc:
                        slot2 = blocks2.index(None, base2,
                                              base2 + l2_assoc)
                        l2_set_len[sid][set2] += 1
                    else:
                        ages2 = l2_agesl[sid]
                        segment = ages2[base2:base2 + l2_assoc]
                        slot2 = base2 + segment.index(min(segment))
                        victim = blocks2[slot2]
                        cb = l2_cbs[sid]
                        if cb is not None:
                            cb(victim, l2_tagsl[sid][slot2])
                        stats2.evictions += 1
                        del where2[victim]
                    blocks2[slot2] = iblock
                    l2_tagsl[sid][slot2] = 0
                    where2[iblock] = slot2
                    pol2 = l2_pols[sid]
                    l2_agesl[sid][slot2] = pol2._tick
                    pol2._tick += 1
                    latency += dram_access(iblock)
                cycles += latency
            if dblock >= 0:
                slot = d_where_get(dblock)
                entry = directory_get(dblock) \
                    if slot is not None else None
                if entry is None:
                    cycles += (
                        access_data(core, dblock, dwrite)
                        - l1d_hit_latency
                    )
                elif (
                    (entry.owner == core and len(entry.sharers) == 1)
                    if dwrite else
                    (core in entry.sharers
                     and (entry.owner is None
                          or entry.owner == core))
                ):
                    d_hits += 1
                    d_tags[slot] = 0
                    if d_mode == "age":
                        tick = d_pol._tick
                        d_ages[slot] = tick
                        d_pol._tick = tick + 1
                    elif d_mode == "zero":
                        d_ages[slot] = 0
                    elif d_mode == "call":
                        d_pol.hit_slot(slot)
                else:
                    cycles += (
                        access_data(core, dblock, dwrite)
                        - l1d_hit_latency
                    )

        i_pol._tick = i_tick
        i_stats = l1i.stats
        i_stats.hits += i_hits
        i_stats.misses += i_misses
        i_stats.evictions += i_evictions
        # Bulk mutation-version accounting: each inline fill changed
        # L1-I residency once (repro.sim.batch keys memos on this).
        l1i.version += i_misses
        self._ff_fill_base[core] += i_misses
        l1d_stats.hits += d_hits
        # Exactly one L2 message crosses the torus per L1-I miss.
        self.hier.l2_demand_traffic += i_misses
        noc = self.hier.noc
        noc.messages += i_misses
        noc.total_hops += noc_hops
        thread.pos = end
        thread.instructions_done += instructions
        self.total_instructions += instructions
        self.core_time[core] += int(cycles)
        return end - pos

    def _run_events_tight_age_ff(
        self,
        core: int,
        thread: TxnThread,
        max_events: int,
        tag: int,
        run_tables: tuple,
    ) -> int:
        """:meth:`_run_events_tight_age` with hit-run fast-forwarding.

        ``run_tables`` is the trace's precomputed
        :meth:`~repro.trace.trace.TransactionTrace.run_tables` pair:
        ``next_ff`` gives the next fast-forward candidate at or after
        any position, so events outside runs replay on the verbatim
        scalar chunks below; at a candidate, if every distinct block of
        the run is L1-I resident the whole run retires with bulk
        accounting -- per-event cycle terms are still accumulated
        sequentially (float addition is non-associative), hits are bulk
        counted, and under MRU promotion each block's age becomes the
        stamp of its *last* occurrence (``run_start_tick + offset``)
        with the tick advanced by the run length, exactly the scalar
        outcome.  A run only touches resident blocks, so no fill,
        eviction, victim callback, L2 or data-side effect is skipped.

        The residency probe is memoized per distinct-block tuple under
        a per-set residency signature: the sum of the involved sets'
        fill counters plus the cache's out-of-band mutation count
        (:attr:`Cache.version` net of the fills the age loops account
        into it -- flushes, invalidates, tag rewrites and any public
        access land there).  All components are monotonic, so the sum
        compares equal iff nothing touching an involved set changed;
        fills to *other* sets leave the memo valid.  Because the key
        is the run's content rather than its trace position, a
        successor thread replaying the same code-path phase against
        the same warm L1-I (the stratified-execution common case)
        reuses the predecessor's probe.
        """
        (l1i, i_where, i_slot_blocks, i_tags, i_set_len,
         i_assoc, i_pol, i_ages, i_promote, hops_row, lat2_row,
         d_where_get, d_tags, d_pol, d_mode, d_ages, l1d_stats,
         l1d_hit_latency,
         l2_wheres, l2_blocks, l2_tagsl, l2_set_len, l2_pols,
         l2_agesl, l2_statsl, l2_cbs, l2_assoc, l2_nsets, l2_pot,
         l2_mask, l2_promote, num_cores, dram_access, directory_get,
         access_data) = self._age_statics[core]
        trace = thread.trace
        events = trace.packed_events(self._base_cpi, self._l1i_sets)
        next_ff, runs = run_tables
        i_victim_cb = l1i.victim_callback
        i_where_get = i_where.get
        i_tick = i_pol._tick
        pos = thread.pos
        end = min(len(events), pos + max_events)
        prefix = trace.instruction_prefix()
        instructions = prefix[end] - prefix[pos]
        ff_memo = self._ff_memos[core]
        ff_memo_get = ff_memo.get
        set_fills = self._ff_set_fills[core]
        # Out-of-band mutation count: version bumps not accounted by
        # the age loops' bulk fill updates (flush, invalidate, tag
        # rewrites, any public access).  Constant within the slice.
        shock = l1i.version - self._ff_fill_base[core]
        cycles = 0.0
        i_hits = 0
        i_misses = 0
        i_evictions = 0
        d_hits = 0
        noc_hops = 0
        ff_runs = 0
        ff_memo_hits = 0

        p = pos
        while p < end:
            nf = next_ff[p]
            if nf > p:
                # Scalar chunk up to the next candidate run (or the
                # slice end); the body is the tight loop's, verbatim.
                stop = nf if nf < end else end
                for iblock, icycles, ilen, dblock, dwrite, iset in \
                        events[p:stop]:
                    cycles += icycles
                    slot = i_where_get(iblock)
                    if slot is not None:
                        i_hits += 1
                        i_tags[slot] = tag
                        if i_promote:
                            i_ages[slot] = i_tick
                            i_tick += 1
                    else:
                        i_misses += 1
                        set_fills[iset] += 1
                        base = iset * i_assoc
                        if i_set_len[iset] < i_assoc:
                            slot = i_slot_blocks.index(None, base,
                                                       base + i_assoc)
                            i_set_len[iset] += 1
                        else:
                            segment = i_ages[base:base + i_assoc]
                            slot = base + segment.index(min(segment))
                            victim = i_slot_blocks[slot]
                            if i_victim_cb is not None:
                                i_victim_cb(victim, i_tags[slot])
                            i_evictions += 1
                            del i_where[victim]
                        i_slot_blocks[slot] = iblock
                        i_tags[slot] = tag
                        i_where[iblock] = slot
                        i_ages[slot] = i_tick
                        i_tick += 1
                        sid = iblock % num_cores
                        noc_hops += hops_row[sid]
                        latency = lat2_row[sid]
                        where2 = l2_wheres[sid]
                        slot2 = where2.get(iblock)
                        if slot2 is not None:
                            l2_statsl[sid].hits += 1
                            if l2_promote:
                                pol2 = l2_pols[sid]
                                l2_agesl[sid][slot2] = pol2._tick
                                pol2._tick += 1
                            l2_tagsl[sid][slot2] = 0
                        else:
                            stats2 = l2_statsl[sid]
                            stats2.misses += 1
                            set2 = (iblock & l2_mask) if l2_pot \
                                else (iblock % l2_nsets)
                            base2 = set2 * l2_assoc
                            blocks2 = l2_blocks[sid]
                            if l2_set_len[sid][set2] < l2_assoc:
                                slot2 = blocks2.index(
                                    None, base2, base2 + l2_assoc)
                                l2_set_len[sid][set2] += 1
                            else:
                                ages2 = l2_agesl[sid]
                                segment = ages2[base2:base2 + l2_assoc]
                                slot2 = base2 + segment.index(
                                    min(segment))
                                victim = blocks2[slot2]
                                cb = l2_cbs[sid]
                                if cb is not None:
                                    cb(victim, l2_tagsl[sid][slot2])
                                stats2.evictions += 1
                                del where2[victim]
                            blocks2[slot2] = iblock
                            l2_tagsl[sid][slot2] = 0
                            where2[iblock] = slot2
                            pol2 = l2_pols[sid]
                            l2_agesl[sid][slot2] = pol2._tick
                            pol2._tick += 1
                            latency += dram_access(iblock)
                        cycles += latency
                    if dblock >= 0:
                        slot = d_where_get(dblock)
                        entry = directory_get(dblock) \
                            if slot is not None else None
                        if entry is None:
                            cycles += (
                                access_data(core, dblock, dwrite)
                                - l1d_hit_latency
                            )
                        elif (
                            (entry.owner == core
                             and len(entry.sharers) == 1)
                            if dwrite else
                            (core in entry.sharers
                             and (entry.owner is None
                                  or entry.owner == core))
                        ):
                            d_hits += 1
                            d_tags[slot] = 0
                            if d_mode == "age":
                                tick = d_pol._tick
                                d_ages[slot] = tick
                                d_pol._tick = tick + 1
                            elif d_mode == "zero":
                                d_ages[slot] = 0
                            elif d_mode == "call":
                                d_pol.hit_slot(slot)
                        else:
                            cycles += (
                                access_data(core, dblock, dwrite)
                                - l1d_hit_latency
                            )
                p = stop
                continue
            # A candidate run starts exactly at p.
            (rend, run_cycles, distinct, last_offs, n_run,
             run_sets) = runs[p]
            took = False
            if rend <= end:
                sig = shock
                for fset in run_sets:
                    sig += set_fills[fset]
                memo = ff_memo_get(distinct)
                if memo is not None and memo[0] == sig:
                    slots = memo[1]
                    took = True
                    ff_memo_hits += 1
                else:
                    slots = []
                    slots_append = slots.append
                    for block in distinct:
                        fslot = i_where_get(block)
                        if fslot is None:
                            break
                        slots_append(fslot)
                    else:
                        took = True
                        ff_memo[distinct] = (sig, slots)
            if took:
                # Every block resident: the run is all hits, so no
                # state beyond ages/tags/stats can change -- retire it.
                ff_runs += 1
                for icycles in run_cycles:
                    cycles += icycles
                i_hits += n_run
                if i_promote:
                    for fslot, off in zip(slots, last_offs):
                        i_ages[fslot] = i_tick + off
                    i_tick += n_run
                for fslot in slots:
                    i_tags[fslot] = tag
                p = rend
                continue
            # Run not fully resident (or it straddles the slice end):
            # replay it scalar, then resume the run walk after it.
            stop = rend if rend < end else end
            for iblock, icycles, ilen, dblock, dwrite, iset in \
                    events[p:stop]:
                cycles += icycles
                slot = i_where_get(iblock)
                if slot is not None:
                    i_hits += 1
                    i_tags[slot] = tag
                    if i_promote:
                        i_ages[slot] = i_tick
                        i_tick += 1
                else:
                    i_misses += 1
                    set_fills[iset] += 1
                    base = iset * i_assoc
                    if i_set_len[iset] < i_assoc:
                        slot = i_slot_blocks.index(None, base,
                                                   base + i_assoc)
                        i_set_len[iset] += 1
                    else:
                        segment = i_ages[base:base + i_assoc]
                        slot = base + segment.index(min(segment))
                        victim = i_slot_blocks[slot]
                        if i_victim_cb is not None:
                            i_victim_cb(victim, i_tags[slot])
                        i_evictions += 1
                        del i_where[victim]
                    i_slot_blocks[slot] = iblock
                    i_tags[slot] = tag
                    i_where[iblock] = slot
                    i_ages[slot] = i_tick
                    i_tick += 1
                    sid = iblock % num_cores
                    noc_hops += hops_row[sid]
                    latency = lat2_row[sid]
                    where2 = l2_wheres[sid]
                    slot2 = where2.get(iblock)
                    if slot2 is not None:
                        l2_statsl[sid].hits += 1
                        if l2_promote:
                            pol2 = l2_pols[sid]
                            l2_agesl[sid][slot2] = pol2._tick
                            pol2._tick += 1
                        l2_tagsl[sid][slot2] = 0
                    else:
                        stats2 = l2_statsl[sid]
                        stats2.misses += 1
                        set2 = (iblock & l2_mask) if l2_pot \
                            else (iblock % l2_nsets)
                        base2 = set2 * l2_assoc
                        blocks2 = l2_blocks[sid]
                        if l2_set_len[sid][set2] < l2_assoc:
                            slot2 = blocks2.index(None, base2,
                                                  base2 + l2_assoc)
                            l2_set_len[sid][set2] += 1
                        else:
                            ages2 = l2_agesl[sid]
                            segment = ages2[base2:base2 + l2_assoc]
                            slot2 = base2 + segment.index(min(segment))
                            victim = blocks2[slot2]
                            cb = l2_cbs[sid]
                            if cb is not None:
                                cb(victim, l2_tagsl[sid][slot2])
                            stats2.evictions += 1
                            del where2[victim]
                        blocks2[slot2] = iblock
                        l2_tagsl[sid][slot2] = 0
                        where2[iblock] = slot2
                        pol2 = l2_pols[sid]
                        l2_agesl[sid][slot2] = pol2._tick
                        pol2._tick += 1
                        latency += dram_access(iblock)
                    cycles += latency
                if dblock >= 0:
                    slot = d_where_get(dblock)
                    entry = directory_get(dblock) \
                        if slot is not None else None
                    if entry is None:
                        cycles += (
                            access_data(core, dblock, dwrite)
                            - l1d_hit_latency
                        )
                    elif (
                        (entry.owner == core
                         and len(entry.sharers) == 1)
                        if dwrite else
                        (core in entry.sharers
                         and (entry.owner is None
                              or entry.owner == core))
                    ):
                        d_hits += 1
                        d_tags[slot] = 0
                        if d_mode == "age":
                            tick = d_pol._tick
                            d_ages[slot] = tick
                            d_pol._tick = tick + 1
                        elif d_mode == "zero":
                            d_ages[slot] = 0
                        elif d_mode == "call":
                            d_pol.hit_slot(slot)
                    else:
                        cycles += (
                            access_data(core, dblock, dwrite)
                            - l1d_hit_latency
                        )
            p = stop

        i_pol._tick = i_tick
        i_stats = l1i.stats
        i_stats.hits += i_hits
        i_stats.misses += i_misses
        i_stats.evictions += i_evictions
        l1i.version += i_misses
        self._ff_fill_base[core] += i_misses
        l1d_stats.hits += d_hits
        self.hier.l2_demand_traffic += i_misses
        noc = self.hier.noc
        noc.messages += i_misses
        noc.total_hops += noc_hops
        self.ff_runs += ff_runs
        self.ff_memo_hits += ff_memo_hits
        thread.pos = end
        thread.instructions_done += instructions
        self.total_instructions += instructions
        self.core_time[core] += int(cycles)
        return end - pos

    def _run_events_fast_age(
        self,
        core: int,
        thread: TxnThread,
        max_events: int,
        tag: int,
        stop_on_switch: bool,
        miss_log: Optional[list],
        stop_after_misses: int,
    ) -> int:
        """:meth:`_run_events_tight_age` plus the monitored features.

        Handles STREX switch monitoring and SLICC miss logging/bounding
        with the same fully inlined cache machinery; only the per-event
        epilogue differs from the tight loop.

        Hit-run fast-forwarding applies here too, with extra guards: a
        fully resident run is all L1-I hits with no data-side events,
        so it can neither append to ``miss_log`` nor fire the victim
        callback that sets ``switch_requested`` -- monitoring state
        cannot change *during* the run.  It may already be armed at the
        run's start, though (the scalar loop would break after one more
        event), so a run is only retired in bulk when neither break
        condition currently holds.
        """
        (l1i, i_where, i_slot_blocks, i_tags, i_set_len,
         i_assoc, i_pol, i_ages, i_promote, hops_row, lat2_row,
         d_where_get, d_tags, d_pol, d_mode, d_ages, l1d_stats,
         l1d_hit_latency,
         l2_wheres, l2_blocks, l2_tagsl, l2_set_len, l2_pols,
         l2_agesl, l2_statsl, l2_cbs, l2_assoc, l2_nsets, l2_pot,
         l2_mask, l2_promote, num_cores, dram_access, directory_get,
         access_data) = self._age_statics[core]
        trace = thread.trace
        events = trace.packed_events(self._base_cpi, self._l1i_sets)
        i_victim_cb = l1i.victim_callback
        i_where_get = i_where.get
        i_tick = i_pol._tick
        pos = thread.pos
        end = min(len(events), pos + max_events)
        start = pos
        set_fills = self._ff_set_fills[core]
        next_ff = None
        if self._ff_enabled:
            tables = trace.run_tables(self._base_cpi, self._l1i_sets)
            if tables is not None:
                next_ff, runs = tables
                prefix = trace.instruction_prefix()
                ff_memo = self._ff_memos[core]
                ff_memo_get = ff_memo.get
                shock = l1i.version - self._ff_fill_base[core]
        cycles = 0.0
        instructions = 0
        i_hits = 0
        i_misses = 0
        i_evictions = 0
        d_hits = 0
        noc_hops = 0
        ff_runs = 0
        ff_memo_hits = 0

        while pos < end:
            if next_ff is not None and next_ff[pos] == pos:
                (rend, run_cycles, distinct, last_offs, n_run,
                 run_sets) = runs[pos]
                if rend <= end \
                        and not (stop_on_switch
                                 and self.switch_requested) \
                        and not (stop_after_misses
                                 and miss_log is not None
                                 and len(miss_log)
                                 >= stop_after_misses):
                    sig = shock
                    for fset in run_sets:
                        sig += set_fills[fset]
                    memo = ff_memo_get(distinct)
                    if memo is not None and memo[0] == sig:
                        slots = memo[1]
                        took = True
                        ff_memo_hits += 1
                    else:
                        took = False
                        slots = []
                        slots_append = slots.append
                        for block in distinct:
                            fslot = i_where_get(block)
                            if fslot is None:
                                break
                            slots_append(fslot)
                        else:
                            took = True
                            ff_memo[distinct] = (sig, slots)
                    if took:
                        ff_runs += 1
                        for icycles in run_cycles:
                            cycles += icycles
                        instructions += prefix[rend] - prefix[pos]
                        i_hits += n_run
                        if i_promote:
                            for fslot, off in zip(slots, last_offs):
                                i_ages[fslot] = i_tick + off
                            i_tick += n_run
                        for fslot in slots:
                            i_tags[fslot] = tag
                        pos = rend
                        continue
            iblock, icycles, ilen, dblock, dwrite, iset = events[pos]
            instructions += ilen
            cycles += icycles
            slot = i_where_get(iblock)
            if slot is not None:
                i_hits += 1
                i_tags[slot] = tag
                if i_promote:
                    i_ages[slot] = i_tick
                    i_tick += 1
            else:
                i_misses += 1
                set_fills[iset] += 1
                base = iset * i_assoc
                if i_set_len[iset] < i_assoc:
                    slot = i_slot_blocks.index(None, base,
                                               base + i_assoc)
                    i_set_len[iset] += 1
                else:
                    segment = i_ages[base:base + i_assoc]
                    slot = base + segment.index(min(segment))
                    victim = i_slot_blocks[slot]
                    if i_victim_cb is not None:
                        i_victim_cb(victim, i_tags[slot])
                    i_evictions += 1
                    del i_where[victim]
                i_slot_blocks[slot] = iblock
                i_tags[slot] = tag
                i_where[iblock] = slot
                i_ages[slot] = i_tick
                i_tick += 1
                sid = iblock % num_cores
                noc_hops += hops_row[sid]
                latency = lat2_row[sid]
                where2 = l2_wheres[sid]
                slot2 = where2.get(iblock)
                if slot2 is not None:
                    l2_statsl[sid].hits += 1
                    if l2_promote:
                        pol2 = l2_pols[sid]
                        l2_agesl[sid][slot2] = pol2._tick
                        pol2._tick += 1
                    l2_tagsl[sid][slot2] = 0
                else:
                    stats2 = l2_statsl[sid]
                    stats2.misses += 1
                    set2 = (iblock & l2_mask) if l2_pot \
                        else (iblock % l2_nsets)
                    base2 = set2 * l2_assoc
                    blocks2 = l2_blocks[sid]
                    if l2_set_len[sid][set2] < l2_assoc:
                        slot2 = blocks2.index(None, base2,
                                              base2 + l2_assoc)
                        l2_set_len[sid][set2] += 1
                    else:
                        ages2 = l2_agesl[sid]
                        segment = ages2[base2:base2 + l2_assoc]
                        slot2 = base2 + segment.index(min(segment))
                        victim = blocks2[slot2]
                        cb = l2_cbs[sid]
                        if cb is not None:
                            cb(victim, l2_tagsl[sid][slot2])
                        stats2.evictions += 1
                        del where2[victim]
                    blocks2[slot2] = iblock
                    l2_tagsl[sid][slot2] = 0
                    where2[iblock] = slot2
                    pol2 = l2_pols[sid]
                    l2_agesl[sid][slot2] = pol2._tick
                    pol2._tick += 1
                    latency += dram_access(iblock)
                cycles += latency
                if miss_log is not None:
                    miss_log.append(iblock)
            if dblock >= 0:
                slot = d_where_get(dblock)
                entry = directory_get(dblock) \
                    if slot is not None else None
                if entry is None:
                    cycles += (
                        access_data(core, dblock, dwrite)
                        - l1d_hit_latency
                    )
                elif (
                    (entry.owner == core and len(entry.sharers) == 1)
                    if dwrite else
                    (core in entry.sharers
                     and (entry.owner is None
                          or entry.owner == core))
                ):
                    d_hits += 1
                    d_tags[slot] = 0
                    if d_mode == "age":
                        tick = d_pol._tick
                        d_ages[slot] = tick
                        d_pol._tick = tick + 1
                    elif d_mode == "zero":
                        d_ages[slot] = 0
                    elif d_mode == "call":
                        d_pol.hit_slot(slot)
                else:
                    cycles += (
                        access_data(core, dblock, dwrite)
                        - l1d_hit_latency
                    )
            pos += 1
            if stop_on_switch and self.switch_requested:
                break
            if stop_after_misses and miss_log is not None \
                    and len(miss_log) >= stop_after_misses:
                break

        i_pol._tick = i_tick
        i_stats = l1i.stats
        i_stats.hits += i_hits
        i_stats.misses += i_misses
        i_stats.evictions += i_evictions
        l1i.version += i_misses
        self._ff_fill_base[core] += i_misses
        l1d_stats.hits += d_hits
        self.hier.l2_demand_traffic += i_misses
        noc = self.hier.noc
        noc.messages += i_misses
        noc.total_hops += noc_hops
        self.ff_runs += ff_runs
        self.ff_memo_hits += ff_memo_hits
        thread.pos = pos
        thread.instructions_done += instructions
        self.total_instructions += instructions
        self.core_time[core] += int(cycles)
        return pos - start

    # ------------------------------------------------------------------
    # Thread lifecycle helpers (called by schedulers)
    # ------------------------------------------------------------------
    def mark_started(self, core: int, thread: TxnThread) -> None:
        """Record a thread's first dispatch."""
        if thread.start_time is None:
            thread.start_time = self.core_time[core]

    def mark_finished(self, core: int, thread: TxnThread) -> None:
        """Record a thread's completion."""
        thread.finish_time = self.core_time[core]
        self.finished_threads += 1

    def charge(self, core: int, cycles: int) -> None:
        """Charge overhead cycles (context switch, migration) to a core."""
        self.core_time[core] += cycles

    def advance_clock(self, core: int, to_time: int) -> None:
        """Move a core's clock forward to ``to_time`` (idle waiting for
        an in-flight migration); the gap is recorded as idle, not busy."""
        gap = to_time - self.core_time[core]
        if gap > 0:
            self.core_time[core] = to_time
            self.idle_cycles[core] += gap

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, workload_name: str = "") -> RunResult:
        """Run all threads to completion and collect results.

        Observability follows the counter-only hot-path rule (DESIGN
        decision 17): one ``sim.run`` span wraps the whole simulation
        and the engine's existing counters are read once at the end --
        the event loops never call into the tracer.  When tracing is
        disarmed the only cost is building the span's tag dict.
        """
        span = obs.span(
            "sim.run",
            workload=workload_name or None,
            scheduler=self.scheduler.name,
            cores=self.config.num_cores,
            kernel=(
                "age"
                if self._age_kernel
                else ("fast" if self._fast_kernel else "reference")
            ),
        )
        with span as sp:
            if sp.armed:
                reg = batch_replay.registry()
                pre = (
                    reg.recordings,
                    reg.replays,
                    reg.fallbacks,
                    reg.aborts,
                )
            result = self._run(workload_name)
            if sp.armed:
                sp.add(
                    "events", sum(t.pos for t in self.threads)
                )
                sp.add("instructions", self.total_instructions)
                sp.add("ff_runs", self.ff_runs)
                sp.add("ff_memo_hits", self.ff_memo_hits)
                post = (
                    reg.recordings,
                    reg.replays,
                    reg.fallbacks,
                    reg.aborts,
                )
                for name, delta in zip(
                    (
                        "batch_recordings",
                        "batch_replays",
                        "batch_fallbacks",
                        "batch_aborts",
                    ),
                    (p - q for p, q in zip(post, pre)),
                ):
                    if delta:
                        sp.add(name, delta)
                tracer = obs.tracer()
                if tracer is not None:
                    metrics = tracer.metrics
                    metrics.inc("sim.runs")
                    metrics.inc("sim.events", sp.counters["events"])
                    metrics.inc(
                        "sim.instructions", self.total_instructions
                    )
            return result

    def _run(self, workload_name: str) -> RunResult:
        scheduler = self.scheduler
        scheduler.start()
        heap = [
            (self.core_time[core], core)
            for core in range(self.config.num_cores)
            if scheduler.has_work(core)
        ]
        heapq.heapify(heap)
        self._in_heap = {core for _, core in heap}
        checker = self.checker
        # The recorder (if attached) hooks the hierarchy's L2 access;
        # keep a reference so it is unhooked -- and its recording
        # stored or discarded -- however this run exits, even if the
        # layer detaches itself mid-run.
        batch = self._batch

        try:
            while self.finished_threads < len(self.threads):
                if not heap:
                    raise RuntimeError(
                        "deadlock: unfinished threads but no runnable"
                        " core"
                    )
                _, core = heapq.heappop(heap)
                self._in_heap.discard(core)
                if not scheduler.has_work(core):
                    continue
                scheduler.run_slice(core)
                if checker is not None:
                    checker.after_slice(core)
                if scheduler.has_work(core):
                    self._activate(heap, core)
                # Schedulers may have handed work to other (parked)
                # cores.
                for other in scheduler.drain_wakeups():
                    if scheduler.has_work(other):
                        self._activate(heap, other)
        finally:
            if batch is not None:
                batch.finish()

        return self._collect(workload_name)

    def _activate(self, heap: list, core: int) -> None:
        if core not in self._in_heap:
            heapq.heappush(heap, (self.core_time[core], core))
            self._in_heap.add(core)

    def _collect(self, workload_name: str) -> RunResult:
        latencies = [
            t.latency for t in self.threads if t.latency is not None
        ]
        busy_cores = [t for t in self.core_time if t > 0]
        cycles = max(busy_cores) if busy_cores else 0
        result = RunResult(
            workload=workload_name,
            scheduler=self.scheduler.name,
            num_cores=self.config.num_cores,
            cycles=cycles,
            busy_cycles=sum(self.core_time) - sum(self.idle_cycles),
            instructions=self.total_instructions,
            i_misses=self.hier.instruction_misses(),
            d_misses=self.hier.data_misses(),
            transactions=len(self.threads),
            latencies=latencies,
            context_switches=sum(
                t.context_switches for t in self.threads
            ),
            migrations=sum(t.migrations for t in self.threads),
            coherence_misses=sum(self.hier.coherence_misses),
            l2_misses=sum(c.stats.misses for c in self.hier.l2),
            l2_traffic=self.hier.l2_demand_traffic,
            extra={
                "prefetch_coverage": self.hier.prefetcher.coverage,
                "l1i_evictions": sum(
                    c.stats.evictions for c in self.hier.l1i
                ),
            },
        )
        if self.checker is not None:
            self.checker.finalize(result)
        return result
