"""The multicore trace-replay simulation engine and results."""

from repro.sim.api import PREFETCHERS, SCHEDULERS, simulate
from repro.sim.engine import SimulationEngine
from repro.sim.results import RunResult
from repro.sim.thread import TxnThread

__all__ = [
    "PREFETCHERS",
    "SCHEDULERS",
    "simulate",
    "SimulationEngine",
    "RunResult",
    "TxnThread",
]
