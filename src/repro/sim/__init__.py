"""The multicore trace-replay simulation engine and results."""

from repro.sim.api import (
    PREFETCHERS,
    SCHEDULERS,
    simulate,
    validate_run_request,
)
from repro.sim.engine import SimulationEngine
from repro.sim.results import RunResult
from repro.sim.thread import TxnThread

__all__ = [
    "PREFETCHERS",
    "SCHEDULERS",
    "simulate",
    "validate_run_request",
    "SimulationEngine",
    "RunResult",
    "TxnThread",
]
