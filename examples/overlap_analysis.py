#!/usr/bin/env python3
"""Reproduce the paper's motivating observation (Fig. 2): same-type
OLTP transactions overlap heavily in the instruction blocks they touch.

Sixteen Payment transactions run concurrently, one per core; every 100
instructions the blocks each core touched are checked against the other
fifteen L1-I caches and bucketed by overlap degree.

Run:  python examples/overlap_analysis.py
"""

from repro import TpccWorkload, default_scale
from repro.analysis.overlap import BANDS, OverlapAnalysis, summarize

TXN_TYPE = "Payment"
CORES = 16


def main() -> None:
    config = default_scale(num_cores=CORES)
    workload = TpccWorkload(config.l1i_blocks, warehouses=1)
    traces = workload.generate_uniform(TXN_TYPE, CORES, seed=5)

    analysis = OverlapAnalysis(config, interval_instructions=100)
    intervals = analysis.run(traces)
    summary = summarize(intervals)

    print(f"{CORES} concurrent {TXN_TYPE} transactions, one per core.\n")
    print("Time-averaged overlap bands (fraction of touched blocks "
          "resident in N caches):")
    for band in BANDS:
        bar = "#" * round(40 * summary[band])
        print(f"  {band:>5}: {bar} {summary[band]:.1%}")
    print(f"\nBlocks in >=5 caches: {summary['five_or_more']:.1%} "
          "(the paper reports >70%)")

    print("\nOverlap over time (sampled):")
    step = max(1, len(intervals) // 12)
    for interval in intervals[::step]:
        ge10 = interval.fraction(">=10")
        lone = interval.fraction("1")
        print(f"  {interval.kilo_instructions:7.1f} K-instr:  "
              f">=10 caches {ge10:5.1%}   private {lone:5.1%}")
    print("\nThis temporal locality is what STREX converts into L1-I "
          "reuse by stratifying\nexecution into cache-sized phases "
          "(Section 3).")


if __name__ == "__main__":
    main()
