#!/usr/bin/env python3
"""Quickstart: run TPC-C under conventional execution and under STREX.

Builds the TPC-C workload on the mini storage manager, generates a
batch of transactions, replays it through the 4-core CMP simulator with
both schedulers, and reports the paper's headline metrics: L1-I / L1-D
misses per kilo-instruction and relative throughput.

Run:  python examples/quickstart.py
"""

from repro import TpccWorkload, default_scale, simulate
from repro.analysis.report import format_table

CORES = 4
TRANSACTIONS = 60


def main() -> None:
    config = default_scale(num_cores=CORES)
    print("Simulated system (Table 2, scaled preset):")
    print(format_table(
        ["component", "value"],
        [
            ["cores", config.num_cores],
            ["L1-I / L1-D", f"{config.l1i.size_bytes // 1024} KiB, "
                            f"{config.l1i.assoc}-way, "
                            f"{config.l1i.hit_latency}-cycle"],
            ["L2 (NUCA slice)", f"{config.l2_slice.size_bytes // 1024} "
                                f"KiB/core, {config.l2_slice.assoc}-way"],
            ["STREX team size", config.strex.team_size],
            ["phaseID bits", config.strex.phase_bits],
        ],
    ))

    print("\nBuilding TPC-C (1 warehouse) and generating "
          f"{TRANSACTIONS} transactions...")
    workload = TpccWorkload(config.l1i_blocks, warehouses=1)
    traces = workload.generate_mix(TRANSACTIONS, seed=42)
    instructions = sum(t.total_instructions for t in traces)
    print(f"  {len(traces)} transactions, "
          f"{instructions / 1e6:.1f}M instructions")

    base = simulate(config, traces, "base", workload.name)
    strex = simulate(config, traces, "strex", workload.name)

    print("\nResults:")
    print(format_table(
        ["metric", "baseline", "STREX", "delta"],
        [
            ["I-MPKI", round(base.i_mpki, 2), round(strex.i_mpki, 2),
             f"{100 * (strex.i_mpki / base.i_mpki - 1):+.1f}%"],
            ["D-MPKI", round(base.d_mpki, 2), round(strex.d_mpki, 2),
             f"{100 * (strex.d_mpki / base.d_mpki - 1):+.1f}%"],
            ["throughput (txn/Mcycle)", round(base.throughput, 2),
             round(strex.throughput, 2),
             f"{100 * (strex.relative_throughput(base) - 1):+.1f}%"],
            ["context switches", base.context_switches,
             strex.context_switches, ""],
        ],
    ))
    print("\nSTREX time-multiplexes teams of same-type transactions on "
          "each core in L1-I-sized phases;\nthe lead transaction fetches "
          "each code segment once and the rest of the team reuses it.")


if __name__ == "__main__":
    main()
