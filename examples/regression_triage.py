#!/usr/bin/env python3
"""Regression triage with the repro.audit APIs.

A simulator change landed and a figure moved — but *which* cells moved,
and by how much?  This example drives the audit layer programmatically,
the same machinery behind ``repro diff`` and ``repro baseline``:

1. pin a tiny scheduler x workload grid as a baseline (committed
   metric vectors, keyed by spec identity);
2. re-check it against unchanged code — green, served from cache;
3. simulate a "regression" by perturbing the pinned snapshot (standing
   in for a code change that moved the metrics) and let
   :func:`repro.exp.check_baseline` localize the damage to exact
   cells and metrics;
4. cross-check the fast-path kernel against the reference
   implementation with :func:`repro.exp.reference_diff`.

Run:  python examples/regression_triage.py
"""

import json
import tempfile
from pathlib import Path

from repro.exp import (
    ResultCache,
    Runner,
    SweepSpec,
    Tolerance,
    check_baseline,
    pin_baseline,
    reference_diff,
)

GRID = SweepSpec(
    workloads=("tpcc", "tpce"),
    schedulers=("base", "strex"),
    cores=(2,),
    seeds=(7,),
    scales=("tiny",),
    transactions=8,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-triage-"))
    runner = Runner(cache=ResultCache(workdir / "cache"))
    baseline_path = workdir / "baseline.json"

    print("1. Pinning the baseline grid "
          f"({len(GRID.expand())} cells, tiny scale)...")
    baseline = pin_baseline(GRID.expand(), baseline_path,
                            runner=runner, name="triage-demo")
    for cell in sorted(baseline.cells.values(), key=lambda c: c.label):
        print(f"   {cell.label}: cycles={cell.metrics['cycles']:g} "
              f"i_mpki={cell.metrics['i_mpki']:.2f}")

    print("\n2. Checking against unchanged code (cache-warm, exact "
          "tolerance)...")
    report = check_baseline(baseline_path, runner=runner)
    print(f"   {report.format_text().splitlines()[0]} -> "
          f"{'OK' if report.ok(strict=True) else 'DRIFT'}")

    print("\n3. Injecting a fake regression into the pinned snapshot\n"
          "   (stands in for a simulator change; +3% cycles on every "
          "strex cell)...")
    data = json.loads(baseline_path.read_text())
    for row in data["cells"]:
        if row["spec"]["scheduler"] == "strex":
            row["metrics"]["cycles"] = round(
                row["metrics"]["cycles"] * 1.03)
    baseline_path.write_text(json.dumps(data))

    report = check_baseline(baseline_path, runner=runner)
    print(f"   exact check -> exit {report.exit_code(strict=True)}")
    print("   " + "\n   ".join(report.format_text().splitlines()))

    print("\n   The moved metric names the scheduler: only strex "
          "cells drifted,\n   so the triage points at team formation, "
          "not the cache model.")

    print("\n4. Same check under a 5% relative tolerance (would "
          "forgive the drift):")
    loose = check_baseline(baseline_path, runner=runner,
                           tolerance=Tolerance(rel_tol=0.05))
    print(f"   tolerant check -> exit {loose.exit_code(strict=True)}")

    print("\n5. Fast-path vs reference kernel on the same grid "
          "(byte equality):")
    parity = reference_diff(GRID.expand())
    print(f"   {parity.format_text().splitlines()[0]} -> "
          f"{'OK' if parity.ok(strict=True) else 'MISMATCH'}")

    print(f"\nArtifacts left in {workdir} for inspection.")


if __name__ == "__main__":
    main()
