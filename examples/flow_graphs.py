#!/usr/bin/env python3
"""Fig. 1 companion: transaction flow graphs with instruction footprints.

Prints, for TPC-C's New Order and Payment, the sequence of actions
(R = index lookup, U = update, I = insert, IT = index scan), each
action's code-region size, the shared basic-function footprint, and the
measured per-type footprint in L1-I units (Table 3).

Run:  python examples/flow_graphs.py
"""

from repro import TpccWorkload, default_scale
from repro.analysis.report import format_table
from repro.core.fptable import profile_fptable
from repro.db.engine import BASIC_FUNCTION_UNITS

FLOWS = {
    "NewOrder": [
        ("R(WAREHOUSE)", "R_WAREHOUSE"),
        ("R(DISTRICT)", "R_DISTRICT"),
        ("R(CUSTOMER)", "R_CUSTOMER"),
        ("U(DISTRICT)", "U_DISTRICT"),
        ("I(ORDER)", "I_ORDER"),
        ("I(NEW_ORDER)", "I_NEWORDER"),
        ("loop x OL_CNT:", None),
        ("  R(ITEM)", "R_ITEM"),
        ("  R(STOCK)", "R_STOCK"),
        ("  U(STOCK)", "U_STOCK"),
        ("  I(ORDER_LINE)", "I_ORDERLINE"),
    ],
    "Payment": [
        ("R(WAREHOUSE)", "R_WAREHOUSE"),
        ("U(WAREHOUSE)", "U_WAREHOUSE"),
        ("R(DISTRICT)", "R_DISTRICT"),
        ("U(DISTRICT)", "U_DISTRICT"),
        ("if by-name (60%):", None),
        ("  IT(CUSTOMER)", "IT_CUSTOMER"),
        ("R(CUSTOMER)", "R_CUSTOMER"),
        ("U(CUSTOMER)", "U_CUSTOMER"),
        ("I(HISTORY)", "I_HISTORY"),
    ],
}


def main() -> None:
    config = default_scale()
    workload = TpccWorkload(config.l1i_blocks, warehouses=1)
    unit = config.l1i_blocks

    print("Shared basic functions (every transaction type):")
    rows = [[name, units] for name, units in
            sorted(BASIC_FUNCTION_UNITS.items())]
    print(format_table(["function", "L1-I units"], rows))

    for txn_type, actions in FLOWS.items():
        print(f"\n{txn_type} action flow "
              f"(wrapper regions in L1-I units):")
        for label, wrapper in actions:
            if wrapper is None:
                print(f"    {label}")
                continue
            region = workload.layout.region(f"{workload.name}.{wrapper}")
            print(f"    {label:18s} -> {region.num_blocks / unit:.2f} u "
                  f"@ block {region.start_block}")

    print("\nMeasured footprints (Table 3, via FPTable profiling):")
    traces = []
    for name in workload.type_names():
        traces += workload.generate_uniform(name, 3, seed=11)
    table = profile_fptable(traces, config, samples_per_type=3)
    rows = [[name, table.units(name)] for name in table.known_types()]
    print(format_table(["type", "footprint (L1-I units)"], rows))

    shared = workload.types["NewOrder"].spec.wrappers.keys() \
        & workload.types["Payment"].spec.wrappers.keys()
    print(f"\nActions shared by New Order and Payment: "
          f"{sorted(shared)}")
    print("This shared prefix is why their code paths overlap before "
          "diverging (Section 2.1).")


if __name__ == "__main__":
    main()
