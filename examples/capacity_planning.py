#!/usr/bin/env python3
"""Capacity planning: how many cores does this OLTP tenant need, and
which scheduler should run it?

The paper's motivation (Section 1): data centers consolidate tenants,
so the core count available to one OLTP application varies at runtime.
This example plays the role of the hybrid system of Section 5.5: it
profiles the workload's per-type instruction footprints into an FPTable,
then sweeps the core budget and reports, for each budget, which
scheduler the hybrid picks and what throughput each option delivers.

Run:  python examples/capacity_planning.py
"""

from repro import TpceWorkload, default_scale, simulate
from repro.analysis.report import format_table
from repro.core.fptable import profile_fptable

CORE_BUDGETS = (2, 4, 8, 16)
TRANSACTIONS = 80


def main() -> None:
    config = default_scale()
    workload = TpceWorkload(config.l1i_blocks)
    traces = workload.generate_mix(TRANSACTIONS, seed=7)

    print("Profiling per-type instruction footprints (FPTable, "
          "Section 5.5)...")
    fptable = profile_fptable(traces, config)
    rows = [[name, fptable.units(name)]
            for name in fptable.known_types()]
    print(format_table(["transaction type", "footprint (L1-I units)"],
                       rows))
    median = fptable.median_units()
    print(f"\nMedian footprint: {median:.0f} units -> the hybrid "
          f"selects SLICC once the core budget reaches {median:.0f}.")

    print("\nSweeping core budgets:")
    rows = []
    for cores in CORE_BUDGETS:
        cfg = config.with_cores(cores)
        base = simulate(cfg, traces, "base", workload.name)
        strex = simulate(cfg, traces, "strex", workload.name)
        slicc = simulate(cfg, traces, "slicc", workload.name)
        hybrid = simulate(cfg, traces, "hybrid", workload.name)
        decision = "SLICC" if cores >= median else "STREX"
        rows.append([
            cores,
            round(strex.relative_throughput(base), 3),
            round(slicc.relative_throughput(base), 3),
            round(hybrid.relative_throughput(base), 3),
            decision,
        ])
    print(format_table(
        ["cores", "STREX", "SLICC", "hybrid", "hybrid picks"], rows))
    print("\nThroughput is relative to the conventional baseline at the "
          "same core count.\nThe hybrid applies the FPTable rule "
          "(SLICC once the cores cover the median\nfootprint) and stays "
          "within a few percent of the best technique at every\nbudget, "
          "so the tenant can be resized without manual scheduler "
          "selection\n(Section 5.5.1).")


if __name__ == "__main__":
    main()
