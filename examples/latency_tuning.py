#!/usr/bin/env python3
"""Latency/throughput tuning via the STREX team-size knob.

Section 5.4: like software transaction-batching schemes (VoltDB's
request batch size), STREX trades per-transaction latency for overall
throughput through the maximum team size.  This example sweeps the team
size on TPC-C and picks the largest team that still meets a p95 latency
SLO, mirroring how an operator would configure the system.

Run:  python examples/latency_tuning.py
"""

from repro import TpccWorkload, default_scale, simulate
from repro.analysis.latency import LatencyDistribution
from repro.analysis.report import format_table

CORES = 8
TRANSACTIONS = 80
TEAM_SIZES = (2, 4, 6, 8, 10, 12, 16, 20)
#: p95 latency budget, as a multiple of the baseline's p95.
SLO_FACTOR = 3.0


def main() -> None:
    config = default_scale(num_cores=CORES)
    workload = TpccWorkload(config.l1i_blocks, warehouses=1)
    traces = workload.generate_mix(TRANSACTIONS, seed=3)

    base = simulate(config, traces, "base", workload.name)
    base_dist = LatencyDistribution("base", base.latencies)
    slo = base_dist.p95_mcycles * SLO_FACTOR
    print(f"Baseline p95 latency: {base_dist.p95_mcycles:.2f} M-cycles; "
          f"SLO: {slo:.2f} M-cycles (x{SLO_FACTOR:.0f})\n")

    rows = []
    best = None
    for team_size in TEAM_SIZES:
        run = simulate(config, traces, "strex", workload.name,
                       team_size=team_size)
        dist = LatencyDistribution(f"STREX-{team_size}T", run.latencies)
        throughput = run.relative_throughput(base)
        meets = dist.p95_mcycles <= slo
        rows.append([
            f"{team_size}T",
            round(throughput, 3),
            round(dist.mean_mcycles, 2),
            round(dist.p95_mcycles, 2),
            "yes" if meets else "NO",
        ])
        if meets and (best is None or throughput > best[1]):
            best = (team_size, throughput)
    print(format_table(
        ["team size", "rel. throughput", "mean lat (Mcyc)",
         "p95 lat (Mcyc)", "meets SLO"], rows))

    if best:
        print(f"\nRecommended team size: {best[0]} "
              f"(+{100 * (best[1] - 1):.0f}% throughput over the "
              f"baseline within the latency SLO).")
    else:
        print("\nNo team size meets the SLO; run unbatched.")


if __name__ == "__main__":
    main()
